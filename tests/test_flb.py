"""Tests for the FLB scheduler: behaviour, edge cases, and complexity-visible
bookkeeping."""

import pytest

from repro.core import FlbLists, OracleObserver, flb
from repro.exceptions import SchedulerError
from repro.graph import TaskGraph
from repro.machine import MachineModel
from repro.util.rng import make_rng
from repro.workloads import (
    chain,
    erdos_dag,
    fft,
    fork_join,
    independent_tasks,
    laplace,
    lu,
    paper_example,
    series_parallel,
    stencil,
    two_chains,
)


class TestPaperExample:
    def test_schedule_matches_table1(self):
        s = flb(paper_example(), 2)
        expected = {
            0: (0, 0.0, 2.0),
            3: (0, 2.0, 5.0),
            1: (1, 3.0, 5.0),
            2: (0, 5.0, 7.0),
            4: (1, 5.0, 8.0),
            5: (0, 7.0, 10.0),
            6: (1, 8.0, 10.0),
            7: (0, 12.0, 14.0),
        }
        for task, (proc, st, ft) in expected.items():
            assert s.proc_of(task) == proc
            assert s.start_of(task) == st
            assert s.finish_of(task) == ft
        assert s.makespan == 14.0
        assert s.violations() == []

    def test_oracle_holds_on_paper_example(self):
        oracle = OracleObserver()
        flb(paper_example(), 2, observer=oracle)
        assert oracle.iterations == 8
        # t6 (EP, EST 7) ties t5 (non-EP, EST 7) at iteration 6; the paper
        # prefers the non-EP task.
        assert oracle.tie_iterations >= 1


class TestBasicShapes:
    def test_single_task(self):
        g = TaskGraph()
        g.add_task(5.0)
        s = flb(g.freeze(), 3)
        assert s.makespan == 5.0
        assert s.start_of(0) == 0.0

    def test_single_proc_is_topological_execution(self):
        g = erdos_dag(30, 0.2, make_rng(0), ccr=2.0)
        s = flb(g, 1)
        assert s.violations() == []
        assert s.makespan == pytest.approx(g.total_comp())

    def test_chain_width_one(self):
        g = chain(10, make_rng(1), ccr=3.0)
        s = flb(g, 4)
        assert s.violations() == []
        # A chain cannot beat its serial time; with FLB all tasks should
        # end up on one processor (moving any task only adds communication).
        assert s.makespan == pytest.approx(g.total_comp())
        assert s.num_procs_used() == 1

    def test_independent_tasks_load_balance(self):
        g = independent_tasks(16)  # unit comp
        s = flb(g, 4)
        assert s.violations() == []
        assert s.makespan == pytest.approx(4.0)
        for p in range(4):
            assert len(s.proc_tasks(p)) == 4

    def test_two_chains_on_two_procs(self):
        s = flb(two_chains(), 2)
        assert s.violations() == []
        assert s.makespan == pytest.approx(3.0)

    def test_fork_join(self):
        g = fork_join(3, 8, make_rng(2), ccr=0.5)
        s = flb(g, 4)
        assert s.violations() == []

    def test_zero_comm_graph(self):
        g = chain(5, None, ccr=0.0)
        s = flb(g, 2)
        assert s.violations() == []
        assert s.makespan == pytest.approx(5.0)


class TestArguments:
    def test_machine_object(self):
        m = MachineModel(3)
        s = flb(paper_example(), machine=m)
        assert s.num_procs == 3
        assert s.violations() == []

    def test_missing_procs(self):
        with pytest.raises(SchedulerError):
            flb(paper_example())

    def test_conflicting_procs(self):
        with pytest.raises(SchedulerError):
            flb(paper_example(), 2, machine=MachineModel(4))

    def test_matching_procs_ok(self):
        s = flb(paper_example(), 2, machine=MachineModel(2))
        assert s.complete

    def test_unfrozen_graph_accepted(self):
        g = TaskGraph()
        a, b = g.add_task(1.0), g.add_task(1.0)
        g.add_edge(a, b, 1.0)
        s = flb(g, 2)  # flb freezes internally
        assert s.complete

    def test_extended_machine_model(self):
        g = erdos_dag(25, 0.2, make_rng(3), ccr=1.0)
        m = MachineModel(4, comm_scale=2.5, latency=0.3)
        s = flb(g, machine=m)
        assert s.violations() == []


class TestQualityBounds:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: lu(10, make_rng(0), ccr=0.2),
            lambda: lu(10, make_rng(0), ccr=5.0),
            lambda: stencil(8, 8, make_rng(1), ccr=0.2),
            lambda: fft(16, make_rng(2), ccr=5.0),
            lambda: laplace(4, 4, make_rng(3), ccr=1.0),
            lambda: series_parallel(30, make_rng(4), ccr=1.0),
        ],
    )
    @pytest.mark.parametrize("procs", [1, 2, 4, 8])
    def test_valid_and_bounded(self, builder, procs):
        g = builder()
        s = flb(g, procs)
        assert s.violations() == []
        # Any valid schedule is at least total work / P.  Greedy
        # earliest-start scheduling can exceed serial time when joins wait
        # on expensive messages (fine-grain LU), but not by much — an
        # empirical sanity band, not a theorem.
        assert s.makespan >= g.total_comp() / procs - 1e-9
        assert s.makespan <= 2.0 * g.total_comp() + 1e-9

    def test_makespan_never_worse_than_serial(self):
        # FLB always has the option of keeping everything on one processor;
        # its greedy rule keeps processors busy, so the makespan should not
        # exceed serial time on these workloads.
        for seed in range(5):
            g = erdos_dag(40, 0.15, make_rng(seed), ccr=1.0)
            s = flb(g, 4)
            assert s.makespan <= g.total_comp() + 1e-9

    def test_more_procs_never_hurts_much(self):
        g = stencil(8, 10, make_rng(7), ccr=0.2)
        m1 = flb(g, 1).makespan
        m4 = flb(g, 4).makespan
        assert m4 <= m1 + 1e-9


class TestDeterminism:
    def test_repeated_runs_identical(self):
        g = erdos_dag(50, 0.15, make_rng(11), ccr=2.0)
        s1 = flb(g, 4)
        s2 = flb(g, 4)
        assert s1.assignment() == s2.assignment()
        assert s1.makespan == s2.makespan


class TestFlbLists:
    def test_rejects_bad_procs(self):
        with pytest.raises(ValueError):
            FlbLists(0, [])

    def test_entry_task_flow(self):
        lists = FlbLists(2, [5.0, 3.0])
        lists.add_ready_task(0, 0.0, None, 0.0)
        lists.add_ready_task(1, 0.0, None, 0.0)
        lists.check_invariants()
        assert lists.best_ep_candidate() is None
        task, proc, est = lists.best_non_ep_candidate()
        assert task == 0  # higher bottom level wins the LMT tie
        assert est == 0.0

    def test_ep_classification_boundary(self):
        # LMT == PRT(EP) counts as EP type (paper: LMT >= PRT).
        lists = FlbLists(1, [1.0])
        lists.set_prt(0, 4.0)
        lists.add_ready_task(0, 4.0, 0, 2.0)
        cand = lists.best_ep_candidate()
        assert cand is not None and cand[0] == 0
        lists.check_invariants()

    def test_demotion_on_prt_advance(self):
        lists = FlbLists(1, [1.0, 2.0])
        lists.add_ready_task(0, 5.0, 0, 3.0)  # EP: LMT 5 >= PRT 0
        demoted = lists.set_prt(0, 6.0)  # PRT overtakes LMT
        assert demoted == [0]
        assert lists.best_ep_candidate() is None
        task, _, est = lists.best_non_ep_candidate()
        assert task == 0
        assert est == 6.0  # max(LMT 5, PRT 6)
        lists.check_invariants()

    def test_ep_candidate_uses_max_of_emt_and_prt(self):
        lists = FlbLists(2, [1.0])
        lists.set_prt(1, 10.0)
        lists.add_ready_task(0, 20.0, 1, 4.0)  # EMT 4 < PRT 10
        task, proc, est = lists.best_ep_candidate()
        assert (task, proc, est) == (0, 1, 10.0)

    def test_num_ready(self):
        lists = FlbLists(2, [1.0, 1.0, 1.0])
        lists.add_ready_task(0, 0.0, None, 0.0)
        lists.add_ready_task(1, 5.0, 0, 5.0)
        lists.add_ready_task(2, 7.0, 1, 7.0)
        assert lists.num_ready == 3
        assert sorted(lists.ready_tasks()) == [0, 1, 2]
        lists.remove_ep_task(0, 1)
        assert lists.num_ready == 2
        lists.remove_non_ep_task(0)
        assert lists.num_ready == 1
        lists.check_invariants()


class TestTiePreferenceAblation:
    def test_paper_example_tie_flips_decision(self):
        # Iteration 6 of the trace ties t6 (EP) with t5 (non-EP) at 7; the
        # paper schedules t5.  Preferring EP instead schedules t6 first and
        # happens to finish one unit earlier on this instance.
        s_paper = flb(paper_example(), 2)
        s_ep = flb(paper_example(), 2, prefer_non_ep_on_tie=False)
        assert s_paper.makespan == 14.0
        assert s_ep.makespan == 13.0
        assert s_ep.violations() == []

    def test_oracle_accepts_both_policies(self):
        from repro.core import OracleObserver

        for prefer in (True, False):
            oracle = OracleObserver()
            flb(paper_example(), 2, observer=oracle, prefer_non_ep_on_tie=prefer)
            assert oracle.tie_iterations >= 1

    def test_no_ties_means_no_difference(self):
        # Continuous random weights: EP/non-EP ties have ~zero probability,
        # so both policies give identical schedules.
        g = erdos_dag(40, 0.2, make_rng(3), ccr=1.7)
        s1 = flb(g, 4)
        s2 = flb(g, 4, prefer_non_ep_on_tie=False)
        assert s1.assignment() == s2.assignment()

    def test_both_policies_satisfy_theorem3(self):
        from repro.core import OracleObserver

        g = fork_join(4, 6, None, ccr=1.0)  # unit weights: many ties
        for prefer in (True, False):
            oracle = OracleObserver()
            s = flb(g, 3, observer=oracle, prefer_non_ep_on_tie=prefer)
            assert s.violations() == []
