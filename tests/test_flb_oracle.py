"""Property tests of Theorem 3: FLB always schedules the ready task that can
start the earliest, matching an exhaustive ETF-style brute-force scan.

This is the paper's central correctness claim, exercised here across every
workload family, many random graphs (hypothesis), CCR regimes, processor
counts, and extended machine models.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OracleObserver, brute_force_min_est, est_of, flb
from repro.machine import MachineModel
from repro.schedule import Schedule
from repro.util.rng import make_rng
from repro.workloads import (
    cholesky,
    erdos_dag,
    fft,
    fork_join,
    lu_chain,
    in_tree,
    laplace,
    layered_random,
    lu,
    out_tree,
    paper_example,
    series_parallel,
    stencil,
)


def run_with_oracle(graph, procs, machine=None):
    oracle = OracleObserver()
    schedule = flb(graph, procs, machine=machine, observer=oracle)
    assert oracle.iterations == graph.num_tasks
    assert schedule.violations() == []
    return schedule


WORKLOADS = [
    ("lu", lambda rng, ccr: lu(8, rng, ccr=ccr)),
    ("lu_chain", lambda rng, ccr: lu_chain(7, rng, ccr=ccr)),
    ("laplace", lambda rng, ccr: laplace(4, 3, rng, ccr=ccr)),
    ("stencil", lambda rng, ccr: stencil(6, 5, rng, ccr=ccr)),
    ("fft", lambda rng, ccr: fft(8, rng, ccr=ccr)),
    ("cholesky", lambda rng, ccr: cholesky(4, rng, ccr=ccr)),
    ("fork_join", lambda rng, ccr: fork_join(3, 5, rng, ccr=ccr)),
    ("out_tree", lambda rng, ccr: out_tree(3, 3, rng, ccr=ccr)),
    ("in_tree", lambda rng, ccr: in_tree(3, 3, rng, ccr=ccr)),
    ("sp", lambda rng, ccr: series_parallel(20, rng, ccr=ccr)),
]


@pytest.mark.parametrize("name,builder", WORKLOADS)
@pytest.mark.parametrize("ccr", [0.2, 5.0])
@pytest.mark.parametrize("procs", [2, 5])
def test_theorem3_on_workloads(name, builder, ccr, procs):
    run_with_oracle(builder(make_rng(17), ccr), procs)


@pytest.mark.parametrize("procs", [1, 2, 3, 8])
def test_theorem3_paper_example(procs):
    run_with_oracle(paper_example(), procs)


def test_theorem3_extended_machine():
    g = layered_random(5, 5, make_rng(3), ccr=2.0)
    machine = MachineModel(3, comm_scale=1.7, latency=0.4)
    run_with_oracle(g, None, machine=machine)


@settings(max_examples=120, deadline=None)
@given(
    n=st.integers(2, 40),
    p=st.floats(0.0, 0.5),
    ccr=st.floats(0.05, 8.0),
    procs=st.integers(1, 8),
    seed=st.integers(0, 10_000),
)
def test_theorem3_random_graphs(n, p, ccr, procs, seed):
    g = erdos_dag(n, p, make_rng(seed), ccr=ccr)
    run_with_oracle(g, procs)


@settings(max_examples=60, deadline=None)
@given(
    layers=st.integers(1, 8),
    width=st.integers(1, 8),
    density=st.floats(0.05, 1.0),
    procs=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
def test_theorem3_layered_graphs(layers, width, density, procs, seed):
    g = layered_random(layers, width, make_rng(seed), edge_density=density, ccr=1.0)
    run_with_oracle(g, procs)


class TestOracleHelpers:
    def test_est_of_matches_manual(self):
        g = paper_example()
        s = Schedule(g, MachineModel(2))
        s.place(0, 0, 0.0)
        # t2 on p0: message free -> EST = max(FT(t0), PRT(p0)) = 2.
        assert est_of(s, 2, 0) == 2.0
        # t2 on p1: message costs 4 -> EST = 6.
        assert est_of(s, 2, 1) == 6.0

    def test_brute_force_min(self):
        g = paper_example()
        s = Schedule(g, MachineModel(2))
        s.place(0, 0, 0.0)
        best, argmins = brute_force_min_est(s, [1, 2, 3])
        assert best == 2.0
        assert set(argmins) == {(1, 0), (2, 0), (3, 0)}

    def test_oracle_counts_ties(self):
        oracle = OracleObserver()
        flb(paper_example(), 2, observer=oracle)
        assert oracle.iterations == 8
        assert oracle.tie_iterations == 1
