"""The fast FLB and the brute-force reference FLB must produce *identical*
schedules on every input — the strongest cross-check of the priority-list
machinery (the oracle only checks the chosen start time is minimal; this
checks the exact task/processor choice)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import flb
from repro.core.reference import flb_reference
from repro.machine import MachineModel
from repro.util.rng import make_rng
from repro.workloads import (
    cholesky,
    erdos_dag,
    fft,
    fork_join,
    in_tree,
    laplace,
    layered_random,
    lu,
    lu_chain,
    out_tree,
    paper_example,
    series_parallel,
    stencil,
)


def assert_identical(graph, procs, machine=None):
    fast = flb(graph, procs, machine=machine)
    slow = flb_reference(graph, procs, machine=machine)
    for t in graph.tasks():
        assert fast.proc_of(t) == slow.proc_of(t), f"task {t}: different processor"
        assert fast.start_of(t) == pytest.approx(slow.start_of(t)), f"task {t}: different start"
    assert fast.makespan == pytest.approx(slow.makespan)


WORKLOADS = [
    ("paper", lambda rng: paper_example()),
    ("lu", lambda rng: lu(9, rng, ccr=5.0)),
    ("lu_chain", lambda rng: lu_chain(9, rng, ccr=0.2)),
    ("laplace", lambda rng: laplace(4, 4, rng, ccr=1.0)),
    ("stencil", lambda rng: stencil(7, 6, rng, ccr=5.0)),
    ("fft", lambda rng: fft(16, rng, ccr=0.2)),
    ("cholesky", lambda rng: cholesky(5, rng, ccr=1.0)),
    ("fork_join", lambda rng: fork_join(4, 6, rng, ccr=2.0)),
    ("out_tree", lambda rng: out_tree(4, 2, rng, ccr=1.0)),
    ("in_tree", lambda rng: in_tree(4, 2, rng, ccr=1.0)),
    ("sp", lambda rng: series_parallel(25, rng, ccr=1.0)),
]


@pytest.mark.parametrize("name,builder", WORKLOADS)
@pytest.mark.parametrize("procs", [1, 2, 4, 7])
def test_identical_on_workloads(name, builder, procs):
    assert_identical(builder(make_rng(13)), procs)


def test_identical_on_extended_machine():
    g = layered_random(6, 5, make_rng(1), ccr=2.0)
    assert_identical(g, None, machine=MachineModel(3, comm_scale=1.5, latency=0.25))


def test_identical_with_integer_weights_many_ties():
    # Constant weights maximise tie frequency — the hardest case for
    # tie-break equivalence.
    for seed in range(5):
        g = erdos_dag(30, 0.25, None, ccr=1.0)  # deterministic unit weights
        assert_identical(g, 3)
        g2 = layered_random(5, 6, make_rng(seed), edge_density=0.4, ccr=1.0)
        assert_identical(g2, 4)


def test_identical_unit_weight_fork_join():
    g = fork_join(5, 7, None, ccr=1.0)  # all weights equal -> ties everywhere
    for procs in (2, 3, 8):
        assert_identical(g, procs)


@settings(max_examples=150, deadline=None)
@given(
    n=st.integers(2, 35),
    p=st.floats(0.0, 0.5),
    ccr=st.floats(0.05, 8.0),
    procs=st.integers(1, 8),
    seed=st.integers(0, 10_000),
)
def test_property_identical_on_random_graphs(n, p, ccr, procs, seed):
    g = erdos_dag(n, p, make_rng(seed), ccr=ccr)
    assert_identical(g, procs)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(2, 30),
    p=st.floats(0.0, 0.6),
    procs=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
def test_property_identical_with_unit_weights(n, p, procs, seed):
    """Unit weights force maximal tie density."""
    g = erdos_dag(n, p, make_rng(seed), ccr=1.0)
    # Rebuild with constant weights but the random topology.
    from repro.graph import TaskGraph

    g2 = TaskGraph()
    for _ in g.tasks():
        g2.add_task(1.0)
    for src, dst, _ in g.edges():
        g2.add_edge(src, dst, 1.0)
    assert_identical(g2.freeze(), procs)
