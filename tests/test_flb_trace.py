"""Exact reproduction of the paper's Table 1 (FLB execution trace).

These tests pin every row of the published trace: the contents and order of
the per-processor EP lists (with their EMT / bottom-level / LMT
annotations), the non-EP list, and each placement decision.
"""

import pytest

from repro.core import TraceRecorder, flb, format_trace
from repro.workloads import paper_example


@pytest.fixture(scope="module")
def trace():
    g = paper_example()
    recorder = TraceRecorder(g)
    flb(g, 2, observer=recorder)
    return recorder


def ep_list(row, proc):
    return [(e.task, e.emt, e.bottom_level, e.lmt) for e in row.ep_tasks.get(proc, [])]


class TestTable1Rows:
    def test_row_count(self, trace):
        assert len(trace.rows) == 8

    def test_iteration_0(self, trace):
        row = trace.rows[0]
        assert row.ep_tasks == {}
        assert row.non_ep_tasks == [(0, 0.0)]
        assert (row.task, row.proc, row.start, row.finish) == (0, 0, 0.0, 2.0)
        assert not row.is_ep

    def test_iteration_1(self, trace):
        row = trace.rows[1]
        # EP on p0: t3[2; 12/3], t1[2; 11/3], t2[2; 9/6] in that order.
        assert ep_list(row, 0) == [
            (3, 2.0, 12.0, 3.0),
            (1, 2.0, 11.0, 3.0),
            (2, 2.0, 9.0, 6.0),
        ]
        assert ep_list(row, 1) == []
        assert row.non_ep_tasks == []
        assert (row.task, row.proc, row.start, row.finish) == (3, 0, 2.0, 5.0)
        assert row.is_ep

    def test_iteration_2(self, trace):
        row = trace.rows[2]
        # t1 demoted to non-EP (PRT(p0)=5 > LMT(t1)=3).
        assert ep_list(row, 0) == [(2, 2.0, 9.0, 6.0)]
        assert row.non_ep_tasks == [(1, 3.0)]
        assert (row.task, row.proc, row.start, row.finish) == (1, 1, 3.0, 5.0)
        assert not row.is_ep

    def test_iteration_3(self, trace):
        row = trace.rows[3]
        # t4 enabled by p1, t5 by p0 (the paper's EP tie-break).
        assert ep_list(row, 0) == [(2, 2.0, 9.0, 6.0), (5, 6.0, 8.0, 6.0)]
        assert ep_list(row, 1) == [(4, 5.0, 6.0, 7.0)]
        assert row.non_ep_tasks == []
        assert (row.task, row.proc, row.start, row.finish) == (2, 0, 5.0, 7.0)
        assert row.is_ep

    def test_iteration_4(self, trace):
        row = trace.rows[4]
        # t5 demoted (PRT(p0)=7 > 6); t6 newly ready, EP on p0.
        assert ep_list(row, 0) == [(6, 7.0, 6.0, 8.0)]
        assert ep_list(row, 1) == [(4, 5.0, 6.0, 7.0)]
        assert row.non_ep_tasks == [(5, 6.0)]
        assert (row.task, row.proc, row.start, row.finish) == (4, 1, 5.0, 8.0)
        assert row.is_ep

    def test_iteration_5(self, trace):
        row = trace.rows[5]
        assert ep_list(row, 0) == [(6, 7.0, 6.0, 8.0)]
        assert ep_list(row, 1) == []
        assert row.non_ep_tasks == [(5, 6.0)]
        # EP candidate t6 and non-EP candidate t5 both start at 7; the
        # non-EP task is preferred.
        assert (row.task, row.proc, row.start, row.finish) == (5, 0, 7.0, 10.0)
        assert not row.is_ep

    def test_iteration_6(self, trace):
        row = trace.rows[6]
        # t6 demoted (PRT(p0)=10 > LMT 8); scheduled on earliest-idle p1.
        assert row.ep_tasks == {}
        assert row.non_ep_tasks == [(6, 8.0)]
        assert (row.task, row.proc, row.start, row.finish) == (6, 1, 8.0, 10.0)

    def test_iteration_7(self, trace):
        row = trace.rows[7]
        assert ep_list(row, 0) == [(7, 12.0, 2.0, 13.0)]
        assert row.non_ep_tasks == []
        assert (row.task, row.proc, row.start, row.finish) == (7, 0, 12.0, 14.0)
        assert row.is_ep


class TestRendering:
    def test_format_trace_matches_paper_annotations(self, trace):
        text = format_trace(trace)
        # Spot-check the annotated cells against Table 1 in the paper.
        assert "t3[2;12/3]" in text
        assert "t1[2;11/3]" in text
        assert "t2[2;9/6]" in text
        assert "t4[5;6/7]" in text
        assert "t5[6;8/6]" in text
        assert "t6[7;6/8]" in text
        assert "t7[12;2/13]" in text
        assert "t0 -> p0, [0 - 2]" in text
        assert "t7 -> p0, [12 - 14]" in text

    def test_format_trace_explicit_procs(self, trace):
        text = format_trace(trace, procs=[1, 0])
        assert text.index("EP tasks on p1") < text.index("EP tasks on p0")

    def test_format_trace_headers(self, trace):
        lines = format_trace(trace).splitlines()
        assert "non-EP tasks" in lines[0]
        assert "scheduling" in lines[0]
