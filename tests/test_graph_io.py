"""Tests for task-graph serialisation (JSON / TG text / DOT)."""

import pytest

from repro.exceptions import GraphError
from repro.graph import (
    from_json,
    from_tg_text,
    load_json,
    save_json,
    to_dot,
    to_json,
    to_tg_text,
)
from repro.util.rng import make_rng
from repro.workloads import erdos_dag, paper_example


def graphs_equal(a, b) -> bool:
    if a.num_tasks != b.num_tasks or a.num_edges != b.num_edges:
        return False
    for t in a.tasks():
        if a.comp(t) != b.comp(t) or a.name(t) != b.name(t):
            return False
    return set(a.edges()) == set(b.edges())


class TestJson:
    def test_roundtrip_paper_example(self):
        g = paper_example()
        assert graphs_equal(g, from_json(to_json(g)))

    def test_roundtrip_random(self):
        g = erdos_dag(25, 0.2, make_rng(5), ccr=3.0)
        assert graphs_equal(g, from_json(to_json(g)))

    def test_file_roundtrip(self, tmp_path):
        g = paper_example()
        path = tmp_path / "g.json"
        save_json(g, path)
        assert graphs_equal(g, load_json(path))

    def test_rejects_garbage(self):
        with pytest.raises(GraphError):
            from_json("not json at all {")
        with pytest.raises(GraphError):
            from_json('{"format": "something-else"}')

    def test_rejects_sparse_ids(self):
        doc = (
            '{"format": "repro-taskgraph", "version": 1,'
            ' "tasks": [{"id": 0, "comp": 1.0}, {"id": 2, "comp": 1.0}],'
            ' "edges": []}'
        )
        with pytest.raises(GraphError):
            from_json(doc)


class TestTgText:
    def test_roundtrip(self):
        g = paper_example()
        assert graphs_equal(g, from_tg_text(to_tg_text(g)))

    def test_comments_and_blanks_ignored(self):
        text = """
        # a fixture
        t 0 1.5 first
        t 1 2.5 second

        e 0 1 0.5
        """
        g = from_tg_text(text)
        assert g.num_tasks == 2
        assert g.comp(0) == 1.5
        assert g.name(1) == "second"
        assert g.comm(0, 1) == 0.5

    def test_duplicate_task_rejected(self):
        with pytest.raises(GraphError):
            from_tg_text("t 0 1.0\nt 0 2.0\n")

    def test_malformed_rejected(self):
        with pytest.raises(GraphError):
            from_tg_text("t zero 1.0\n")
        with pytest.raises(GraphError):
            from_tg_text("x 0 1.0\n")
        with pytest.raises(GraphError):
            from_tg_text("t 0\n")

    def test_sparse_ids_rejected(self):
        with pytest.raises(GraphError):
            from_tg_text("t 1 1.0\n")


class TestDot:
    def test_contains_nodes_and_edges(self):
        dot = to_dot(paper_example())
        assert dot.startswith("digraph")
        assert '"t0' in dot
        assert "0 -> 1" in dot
        assert dot.rstrip().endswith("}")
