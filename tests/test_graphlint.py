"""Tests for the graph linter (repro.verify.graphlint)."""

import pytest

from repro.exceptions import CycleError
from repro.graph.io import raw_graph_data
from repro.graph.taskgraph import TaskGraph
from repro.verify import find_cycle, lint, lint_data, rule_catalogue
from repro.verify.graphlint import ERROR, INFO, WARNING
from repro.workloads.gallery import paper_example, simple_diamond, two_chains


def codes(report):
    return set(report.codes())


class TestFindCycle:
    def test_acyclic_returns_none(self):
        assert find_cycle(3, [(0, 1), (1, 2)]) is None

    def test_simple_cycle_witness(self):
        witness = find_cycle(3, [(0, 1), (1, 2), (2, 0)])
        assert witness is not None
        assert witness[0] == witness[-1]
        # The witness is a real closed walk along graph edges.
        edges = {(0, 1), (1, 2), (2, 0)}
        for a, b in zip(witness, witness[1:]):
            assert (a, b) in edges

    def test_self_loop_witness(self):
        assert find_cycle(2, [(1, 1)]) == [1, 1]

    def test_cycle_off_the_main_path(self):
        # DAG prefix feeding a cycle deeper in: 0->1->2->3->2.
        witness = find_cycle(4, [(0, 1), (1, 2), (2, 3), (3, 2)])
        assert witness is not None
        assert set(witness) == {2, 3}

    def test_out_of_range_edges_ignored(self):
        assert find_cycle(2, [(0, 5), (-1, 1)]) is None

    def test_empty_graph(self):
        assert find_cycle(0, []) is None


class TestCycleErrorWitness:
    def test_freeze_names_a_real_cycle(self):
        g = TaskGraph()
        for name in "abc":
            g.add_task(1.0, name=name)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.add_edge(2, 0, 1.0)
        with pytest.raises(CycleError) as exc:
            g.freeze()
        msg = str(exc.value)
        # The error names the actual cycle path, not just "stuck" tasks.
        assert "->" in msg
        assert "a" in msg and "b" in msg and "c" in msg

    def test_freeze_witness_with_dag_prefix(self):
        g = TaskGraph()
        for _ in range(5):
            g.add_task(1.0)
        g.add_edge(0, 1, 1.0)  # honest DAG prefix
        g.add_edge(1, 2, 1.0)
        g.add_edge(2, 3, 1.0)
        g.add_edge(3, 4, 1.0)
        g.add_edge(4, 2, 1.0)  # cycle 2->3->4->2
        with pytest.raises(CycleError) as exc:
            g.freeze()
        msg = str(exc.value)
        assert "t0" not in msg and "t1" not in msg


class TestRules:
    def test_clean_graphs(self):
        for g in (paper_example(), simple_diamond()):
            report = lint(g)
            assert report.ok()
            assert report.ok(strict=True)
            assert report.issues == ()

    def test_g001_cycle(self):
        report = lint_data([1.0, 1.0], [(0, 1, 1.0), (1, 0, 1.0)])
        assert "G001" in codes(report)
        assert not report.ok()

    def test_g002_self_edge(self):
        report = lint_data([1.0, 1.0], [(1, 1, 0.5)])
        assert "G002" in codes(report)

    def test_g003_duplicate_edge(self):
        report = lint_data([1.0, 1.0], [(0, 1, 1.0), (0, 1, 2.0)])
        assert "G003" in codes(report)

    @pytest.mark.parametrize("comp", [0.0, -1.0, float("nan"), float("inf")])
    def test_g004_bad_comp(self, comp):
        report = lint_data([1.0, comp], [(0, 1, 1.0)])
        issues = [i for i in report.issues if i.code == "G004"]
        assert issues and issues[0].severity == ERROR
        assert 1 in issues[0].tasks

    @pytest.mark.parametrize("comm", [-1.0, float("nan"), float("inf")])
    def test_g005_bad_comm(self, comm):
        report = lint_data([1.0, 1.0], [(0, 1, comm)])
        assert "G005" in codes(report)

    def test_g006_isolated_task(self):
        report = lint_data([1.0, 1.0, 1.0], [(0, 1, 1.0)])
        issues = [i for i in report.issues if i.code == "G006"]
        assert issues and issues[0].severity == WARNING
        assert issues[0].tasks == (2,)
        # Warnings do not fail the default gate but do fail strict.
        assert report.ok()
        assert not report.ok(strict=True)

    def test_g006_not_fired_for_edge_free_graph(self):
        # A bag of independent tasks is unusual but coherent; flagging
        # every task would be noise.
        report = lint_data([1.0, 1.0, 1.0], [])
        assert "G006" not in codes(report)

    def test_g007_components(self):
        report = lint(two_chains())
        assert "G007" in codes(report)
        assert report.ok()  # warning only

    def test_g008_zero_cost_source(self):
        report = lint_data(
            [1.0, 1.0, 1.0],
            [(0, 1, 0.0), (0, 2, 0.0), (1, 2, 3.0)],
        )
        issues = [i for i in report.issues if i.code == "G008"]
        assert issues and issues[0].severity == INFO
        assert 0 in issues[0].tasks

    def test_g008_zero_cost_sink(self):
        report = lint_data(
            [1.0, 1.0, 1.0],
            [(0, 1, 3.0), (0, 2, 0.0), (1, 2, 0.0)],
        )
        assert any(
            i.code == "G008" and 2 in i.tasks for i in report.issues
        )

    def test_g009_extreme_ccr(self):
        report = lint_data([1.0, 1.0], [(0, 1, 500.0)])
        assert "G009" in codes(report)

    def test_g009_outlier_edge(self):
        edges = [*((0, i, 1.0) for i in range(1, 40)), (0, 40, 100000.0)]
        report = lint_data([1.0] * 41, edges)
        issues = [i for i in report.issues if i.code == "G009"]
        assert any("outlier" in i.message for i in issues)


class TestReport:
    def test_catalogue_covers_all_codes(self):
        cat = rule_catalogue()
        assert [r.code for r in cat] == sorted(r.code for r in cat)
        assert {r.code for r in cat} >= {
            "G001", "G002", "G003", "G004", "G005",
            "G006", "G007", "G008", "G009",
        }
        assert all(r.severity in (ERROR, WARNING, INFO) for r in cat)

    def test_to_dict_shape(self):
        report = lint_data([1.0, 1.0], [(0, 1, float("nan"))])
        doc = report.to_dict()
        assert doc["ok"] is False
        assert doc["num_tasks"] == 2
        assert doc["num_edges"] == 1
        assert doc["issues"][0]["code"] == "G005"
        assert isinstance(doc["issues"][0]["tasks"], list)

    def test_render_mentions_codes(self):
        report = lint_data([1.0, -1.0], [(0, 1, 1.0)])
        text = report.render()
        assert "G004" in text and "error" in text

    def test_nan_comm_caught_despite_taskgraph_accepting_it(self):
        # TaskGraph.add_edge's `comm < 0` check is False for NaN — the
        # linter is the net for exactly this class of input.
        g = TaskGraph()
        g.add_task(1.0)
        g.add_task(1.0)
        g.add_edge(0, 1, float("nan"))
        report = lint(g)
        assert "G005" in codes(report)


class TestRawGraphData:
    def test_roundtrip_of_valid_doc(self):
        from repro.graph.io import to_json

        g = paper_example()
        comps, edges, names = raw_graph_data(to_json(g))
        assert len(comps) == g.num_tasks
        assert len(edges) == g.num_edges
        assert lint_data(comps, edges, names).ok()

    def test_malformed_doc_still_lintable(self):
        doc = {
            "format": "repro-taskgraph",
            "version": 1,
            "tasks": [
                {"id": 0, "comp": 1.0},
                {"id": 1, "comp": -2.0},
            ],
            "edges": [
                {"src": 0, "dst": 1, "comm": 1.0},
                {"src": 0, "dst": 1, "comm": 1.0},
                {"src": 1, "dst": 0, "comm": 2.0},
            ],
        }
        import json

        comps, edges, names = raw_graph_data(json.dumps(doc))
        report = lint_data(comps, edges, names)
        assert {"G001", "G003", "G004"} <= codes(report)

    def test_unreadable_doc_raises(self):
        from repro.exceptions import GraphError

        with pytest.raises(GraphError):
            raw_graph_data("not json at all {")
        with pytest.raises(GraphError):
            raw_graph_data('{"format": "something-else"}')


class TestLintWorkloads:
    @pytest.mark.parametrize("problem", ["lu", "fft", "stencil", "cholesky"])
    def test_generated_workloads_are_clean(self, problem):
        from repro.cli import _build_problem

        report = lint(_build_problem(problem, 150, 1.0, 0))
        assert report.errors == ()
