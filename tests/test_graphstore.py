"""The shared-memory graph registry: codec fidelity, registry lifecycle,
worker-side attach/LRU, and — crucially — *no leaked segments*, ever."""

import gc
import os

import pytest

from repro import graphstore
from repro.graphstore import (
    GraphStore,
    GraphStoreError,
    attach,
    decode_graph,
    encode_graph,
)
from repro.graph.taskgraph import TaskGraph
from repro.schedulers import SCHEDULERS
from repro.util.rng import make_rng
from repro.workloads import layered_random, lu

_HAS_DEV_SHM = os.path.isdir("/dev/shm")


@pytest.fixture(autouse=True)
def _fresh_worker_cache():
    graphstore.clear_worker_cache()
    yield
    graphstore.clear_worker_cache()


class TestCodec:
    def test_roundtrip_preserves_content(self):
        g = layered_random(6, 5, make_rng(4), edge_density=0.4, ccr=5.0)
        g2 = decode_graph(encode_graph(g))
        assert g2.frozen
        assert g2.num_tasks == g.num_tasks
        assert g2.num_edges == g.num_edges
        assert g2.comps == g.comps
        assert [g2.name(t) for t in g2.tasks()] == [g.name(t) for t in g.tasks()]
        assert sorted(g2.edges()) == sorted(g.edges())
        assert g2.topological_order == g.topological_order
        assert g2.fingerprint() == g.fingerprint()

    def test_roundtrip_schedules_bit_identically(self):
        g = lu(8, make_rng(1), ccr=1.0)
        g2 = decode_graph(encode_graph(g))
        for algo in ("flb", "fcp", "mcp"):
            s1 = SCHEDULERS[algo](g, 4)
            s2 = SCHEDULERS[algo](g2, 4)
            assert s1.makespan == s2.makespan
            assert all(
                s1.proc_of(t) == s2.proc_of(t) and s1.start_of(t) == s2.start_of(t)
                for t in range(g.num_tasks)
            )

    def test_unnamed_tasks_stay_unnamed(self):
        g = TaskGraph()
        g.add_task(1.0)
        g.add_task(2.0, name="named")
        g.add_edge(0, 1)
        g.freeze()
        g2 = decode_graph(encode_graph(g))
        assert g2._names == [None, "named"]

    def test_unfrozen_graph_rejected(self):
        g = TaskGraph()
        g.add_task(1.0)
        with pytest.raises(GraphStoreError, match="frozen"):
            encode_graph(g)

    def test_bad_magic_rejected(self):
        blob = bytearray(encode_graph(lu(4, make_rng(0))))
        blob[:4] = b"NOPE"
        with pytest.raises(GraphStoreError, match="magic"):
            decode_graph(bytes(blob))

    def test_truncated_rejected(self):
        blob = encode_graph(lu(4, make_rng(0)))
        with pytest.raises(GraphStoreError):
            decode_graph(blob[: len(blob) // 2])

    def test_padding_tolerated(self):
        # Shared-memory segments round up to page size; trailing bytes must
        # be ignored.
        g = lu(4, make_rng(0))
        blob = encode_graph(g) + b"\x00" * 4096
        assert decode_graph(blob).fingerprint() == g.fingerprint()


class TestRegistry:
    def test_register_is_idempotent_per_content(self):
        g = lu(6, make_rng(0))
        with GraphStore() as store:
            key = store.register(g)
            assert store.register(g) == key
            assert store.register(g.copy()) == key  # same content, same segment
            assert len(store) == 1
            assert store.fingerprint_of(key) == g.fingerprint()

    def test_distinct_graphs_distinct_segments(self):
        with GraphStore() as store:
            k1 = store.register(lu(5, make_rng(0)))
            k2 = store.register(lu(5, make_rng(1)))
            assert k1 != k2
            assert len(store) == 2
            assert store.total_bytes() > 0

    def test_register_requires_frozen(self):
        g = TaskGraph()
        g.add_task(1.0)
        with GraphStore() as store, pytest.raises(GraphStoreError, match="frozen"):
            store.register(g)

    def test_register_after_close_raises(self):
        store = GraphStore()
        store.close()
        with pytest.raises(GraphStoreError, match="closed"):
            store.register(lu(4, make_rng(0)))

    def test_release_unlinks_one(self):
        with GraphStore() as store:
            k1 = store.register(lu(5, make_rng(0)))
            store.register(lu(5, make_rng(1)))
            store.release(k1)
            assert len(store) == 1
            with pytest.raises(GraphStoreError):
                attach(k1)
            store.release("no-such-segment")  # no-op

    def test_close_is_idempotent(self):
        store = GraphStore()
        store.register(lu(4, make_rng(0)))
        store.close()
        store.close()
        assert store.closed


class TestAttach:
    def test_attach_returns_equivalent_graph(self):
        g = lu(7, make_rng(2), ccr=0.5)
        with GraphStore() as store:
            key = store.register(g)
            g2 = attach(key)
            assert g2.fingerprint() == g.fingerprint()
            assert SCHEDULERS["flb"](g2, 4).makespan == SCHEDULERS["flb"](g, 4).makespan

    def test_attach_unknown_key_raises(self):
        with pytest.raises(GraphStoreError, match="does not exist"):
            attach("repro_tg_deadbeefdeadbeef_0_0")

    def test_attach_memoises_per_process(self):
        g = lu(6, make_rng(0))
        with GraphStore() as store:
            key = store.register(g)
            first = attach(key)
            second = attach(key)
            assert second is first  # decoded exactly once
            info = graphstore.worker_cache_info()
            assert info["hits"] == 1 and info["misses"] == 1

    def test_cached_graph_survives_store_close(self):
        # The LRU holds a decoded copy; jobs in flight keep working even
        # after the supervisor unlinked the segment.
        with GraphStore() as store:
            key = store.register(lu(6, make_rng(0)))
            g = attach(key)
        assert attach(key) is g

    def test_lru_bound_evicts_oldest(self):
        graphs = [lu(5, make_rng(seed)) for seed in range(3)]
        with GraphStore() as store:
            keys = [store.register(g) for g in graphs]
            for key in keys:
                attach(key, cache_size=2)
            info = graphstore.worker_cache_info()
            assert info["size"] == 2
            # keys[0] was evicted: attaching again re-decodes (a miss).
            attach(keys[0], cache_size=2)
            assert graphstore.worker_cache_info()["misses"] == 4


@pytest.mark.skipif(not _HAS_DEV_SHM, reason="requires /dev/shm (Linux)")
class TestNoLeaks:
    def test_register_then_close_leaves_no_segment(self):
        before = graphstore.list_segments()
        store = GraphStore()
        key = store.register(lu(10, make_rng(0)))
        assert any(key == name for name in graphstore.list_segments())
        store.close()
        assert graphstore.list_segments() == before

    def test_gc_finalizer_unlinks_forgotten_store(self):
        before = graphstore.list_segments()
        store = GraphStore()
        store.register(lu(6, make_rng(0)))
        assert graphstore.list_segments() != before
        del store
        gc.collect()
        assert graphstore.list_segments() == before

    def test_context_manager_unlinks_on_error(self):
        before = graphstore.list_segments()
        with pytest.raises(RuntimeError), GraphStore() as store:
            store.register(lu(6, make_rng(0)))
            raise RuntimeError("boom")
        assert graphstore.list_segments() == before
