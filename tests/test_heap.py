"""Unit and property tests for repro.util.heap.IndexedHeap."""

import heapq
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.heap import HeapEmptyError, IndexedHeap


class TestBasics:
    def test_empty(self):
        h = IndexedHeap()
        assert len(h) == 0
        assert not h
        assert h.peek_item() is None
        with pytest.raises(HeapEmptyError):
            h.peek()
        with pytest.raises(HeapEmptyError):
            h.pop()

    def test_push_pop_single(self):
        h = IndexedHeap()
        h.push("a", 5)
        assert len(h) == 1
        assert h.peek() == ("a", 5)
        assert h.peek_item() == "a"
        assert h.pop() == ("a", 5)
        assert not h

    def test_pop_order(self):
        h = IndexedHeap()
        for item, key in [("a", 3), ("b", 1), ("c", 2), ("d", 0)]:
            h.push(item, key)
        assert [h.pop() for _ in range(4)] == [
            ("d", 0),
            ("b", 1),
            ("c", 2),
            ("a", 3),
        ]

    def test_duplicate_push_rejected(self):
        h = IndexedHeap()
        h.push("a", 1)
        with pytest.raises(ValueError):
            h.push("a", 2)

    def test_contains_and_key_of(self):
        h = IndexedHeap()
        h.push(7, 1.5)
        assert 7 in h
        assert 8 not in h
        assert h.key_of(7) == 1.5
        with pytest.raises(KeyError):
            h.key_of(8)

    def test_tuple_keys(self):
        h = IndexedHeap()
        h.push("x", (1, -5, 0))
        h.push("y", (1, -7, 1))
        # Larger second component (bottom level) wins via negation.
        assert h.pop()[0] == "y"

    def test_remove_middle(self):
        h = IndexedHeap()
        for i in range(10):
            h.push(i, i)
        assert h.remove(5) == 5
        assert 5 not in h
        assert [h.pop()[0] for _ in range(9)] == [0, 1, 2, 3, 4, 6, 7, 8, 9]

    def test_remove_missing_raises(self):
        h = IndexedHeap()
        with pytest.raises(KeyError):
            h.remove("nope")

    def test_discard(self):
        h = IndexedHeap()
        h.push("a", 1)
        assert h.discard("a") is True
        assert h.discard("a") is False

    def test_update_decrease_and_increase(self):
        h = IndexedHeap()
        for i in range(5):
            h.push(i, i * 10)
        h.update(4, -1)
        assert h.peek() == (4, -1)
        h.update(4, 100)
        assert h.peek() == (0, 0)
        assert h.key_of(4) == 100

    def test_push_or_update(self):
        h = IndexedHeap()
        h.push_or_update("a", 3)
        h.push_or_update("a", 1)
        assert h.peek() == ("a", 1)
        assert len(h) == 1

    def test_clear(self):
        h = IndexedHeap()
        h.push("a", 1)
        h.clear()
        assert not h
        h.push("a", 2)  # reusable after clear
        assert h.peek() == ("a", 2)

    def test_sorted_items(self):
        h = IndexedHeap()
        for item, key in [("a", 3), ("b", 1), ("c", 2)]:
            h.push(item, key)
        assert h.sorted_items() == [("b", 1), ("c", 2), ("a", 3)]

    def test_iter_returns_all_items(self):
        h = IndexedHeap()
        for i in range(6):
            h.push(i, -i)
        assert sorted(h) == list(range(6))

    def test_remove_last_element_keeps_invariants(self):
        h = IndexedHeap()
        h.push("a", 1)
        h.push("b", 2)
        h.remove("b")
        h.check_invariants()
        assert h.pop() == ("a", 1)


class TestRandomized:
    def test_matches_heapq_on_push_pop(self):
        rng = random.Random(42)
        h = IndexedHeap()
        reference = []
        for i in range(500):
            key = rng.random()
            h.push(i, key)
            heapq.heappush(reference, (key, i))
        while reference:
            key, item = heapq.heappop(reference)
            got_item, got_key = h.pop()
            assert got_key == key
            assert got_item == item

    def test_random_operation_stream(self):
        rng = random.Random(7)
        h = IndexedHeap()
        model = {}  # item -> key
        next_id = 0
        for step in range(3000):
            op = rng.random()
            if op < 0.4 or not model:
                key = rng.randint(0, 1000)
                h.push(next_id, key)
                model[next_id] = key
                next_id += 1
            elif op < 0.6:
                item, key = h.pop()
                assert model.pop(item) == key
                assert key == min(model.values(), default=key + 1) or not model or key <= min(
                    model.values()
                )
            elif op < 0.8:
                item = rng.choice(list(model))
                key = rng.randint(0, 1000)
                h.update(item, key)
                model[item] = key
            else:
                item = rng.choice(list(model))
                assert h.remove(item) == model.pop(item)
            if step % 100 == 0:
                h.check_invariants()
        assert len(h) == len(model)
        drained = {}
        while h:
            item, key = h.pop()
            drained[item] = key
        assert drained == model


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["push", "pop", "remove", "update"]), st.integers(0, 50)),
        max_size=120,
    )
)
def test_property_model_equivalence(ops):
    """The heap behaves like a dict + min() model under any operation stream."""
    h = IndexedHeap()
    model = {}
    counter = 0
    for op, key in ops:
        if op == "push":
            h.push(counter, key)
            model[counter] = key
            counter += 1
        elif op == "pop":
            if model:
                item, k = h.pop()
                assert k == min(model.values())
                assert model.pop(item) == k
            else:
                with pytest.raises(HeapEmptyError):
                    h.pop()
        elif op == "remove" and model:
            victim = sorted(model)[key % len(model)]
            assert h.remove(victim) == model.pop(victim)
        elif op == "update" and model:
            victim = sorted(model)[key % len(model)]
            h.update(victim, key)
            model[victim] = key
        h.check_invariants()
        if model:
            assert h.peek()[1] == min(model.values())
    assert len(h) == len(model)
