"""Tests for the heterogeneous-machine extension and HEFT."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import flb
from repro.graph import TaskGraph, bottom_levels
from repro.machine import MachineModel
from repro.schedulers import SCHEDULERS, heft, upward_ranks
from repro.sim import execute
from repro.util.rng import make_rng
from repro.workloads import (
    chain,
    erdos_dag,
    fft,
    independent_tasks,
    lu,
    paper_example,
    stencil,
)


class TestHeterogeneousMachine:
    def test_duration_scaling(self):
        m = MachineModel(3, speeds=(2.0, 1.0, 0.5))
        assert m.duration(4.0, 0) == 2.0
        assert m.duration(4.0, 1) == 4.0
        assert m.duration(4.0, 2) == 8.0
        assert m.is_heterogeneous
        assert not m.is_paper_model

    def test_mean_duration(self):
        m = MachineModel(2, speeds=(1.0, 0.5))
        # (4/1 + 4/0.5)/2 = 6
        assert m.mean_duration(4.0) == pytest.approx(6.0)

    def test_homogeneous_defaults(self):
        m = MachineModel(4)
        assert m.duration(3.0, 2) == 3.0
        assert m.mean_duration(3.0) == 3.0
        assert not m.is_heterogeneous
        assert m.is_paper_model

    def test_uniform_speeds_not_heterogeneous(self):
        m = MachineModel(2, speeds=(1.0, 1.0))
        assert not m.is_heterogeneous

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineModel(2, speeds=(1.0,))
        with pytest.raises(ValueError):
            MachineModel(2, speeds=(1.0, 0.0))
        with pytest.raises(ValueError):
            MachineModel(2, speeds=(1.0, -2.0))

    def test_schedule_uses_durations(self):
        g = TaskGraph()
        g.add_task(4.0)
        g.freeze()
        from repro.schedule import Schedule

        s = Schedule(g, MachineModel(2, speeds=(2.0, 1.0)))
        entry = s.place(0, 0, 0.0)
        assert entry.finish == 2.0
        assert s.violations() == []


class TestUpwardRanks:
    def test_homogeneous_equals_bottom_level(self):
        g = paper_example()
        ranks = upward_ranks(g, MachineModel(4))
        assert ranks == pytest.approx(bottom_levels(g))

    def test_hetero_uses_mean_durations(self):
        g = chain(2, None, ccr=1.0)  # two unit tasks, comm 1
        m = MachineModel(2, speeds=(1.0, 0.5))  # mean duration = 1.5
        ranks = upward_ranks(g, m)
        assert ranks[1] == pytest.approx(1.5)
        assert ranks[0] == pytest.approx(1.5 + 1.0 + 1.5)


class TestHeft:
    @pytest.mark.parametrize(
        "speeds", [None, (1.0, 1.0, 1.0), (2.0, 1.0, 0.5), (4.0, 1.0, 1.0)]
    )
    def test_valid_on_machines(self, speeds):
        g = lu(8, make_rng(0), ccr=2.0)
        m = MachineModel(3, speeds=speeds)
        s = heft(g, machine=m)
        assert s.complete
        assert s.violations() == []

    def test_prefers_fast_processor(self):
        # One very fast processor: serial work should gravitate there.
        g = chain(6, make_rng(1), ccr=0.5)
        m = MachineModel(3, speeds=(10.0, 1.0, 1.0))
        s = heft(g, machine=m)
        assert all(s.proc_of(t) == 0 for t in g.tasks())

    def test_beats_homogeneous_minded_schedulers_on_hetero(self):
        g = lu(12, make_rng(2), ccr=1.0)
        m = MachineModel(4, speeds=(2.0, 1.0, 1.0, 0.5))
        h = heft(g, machine=m).makespan
        for algo in ("flb", "mcp", "hlfet"):
            assert h <= SCHEDULERS[algo](g, machine=m).makespan + 1e-9

    def test_competitive_on_homogeneous(self):
        for seed in range(4):
            g = erdos_dag(30, 0.2, make_rng(seed), ccr=1.0)
            h = heft(g, 4).makespan
            f = flb(g, 4).makespan
            assert h <= 1.3 * f

    def test_makespan_bound_fastest_proc(self):
        """The makespan can never beat total work on an idealised machine
        running everything at the fastest speed in parallel."""
        g = fft(16, make_rng(3), ccr=0.2)
        m = MachineModel(4, speeds=(2.0, 1.0, 1.0, 1.0))
        s = heft(g, machine=m)
        lower = g.total_comp() / (2.0 + 1.0 + 1.0 + 1.0)
        assert s.makespan >= lower - 1e-9

    def test_registry(self):
        s = SCHEDULERS["heft"](paper_example(), 2)
        assert s.violations() == []

    def test_executor_handles_hetero(self):
        g = stencil(6, 5, make_rng(4), ccr=1.0)
        m = MachineModel(3, speeds=(1.5, 1.0, 0.75))
        s = heft(g, machine=m)
        result = execute(s)
        # HEFT inserts into gaps; self-timed replay can only be earlier.
        assert result.makespan <= s.makespan + 1e-6

    def test_independent_tasks_weighted_balance(self):
        g = independent_tasks(30)
        m = MachineModel(2, speeds=(3.0, 1.0))
        s = heft(g, machine=m)
        fast = len(s.proc_tasks(0))
        slow = len(s.proc_tasks(1))
        assert fast > slow  # the fast processor takes the lion's share


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(2, 25),
    p=st.floats(0.0, 0.5),
    procs=st.integers(1, 5),
    seed=st.integers(0, 4000),
    speed_seed=st.integers(0, 100),
)
def test_property_all_schedulers_valid_on_hetero(n, p, procs, seed, speed_seed):
    """Every scheduler must stay *valid* (if not clever) on heterogeneous
    machines: finish times and the validity checker both honour speeds."""
    g = erdos_dag(n, p, make_rng(seed), ccr=1.5)
    speeds = tuple(float(s) for s in make_rng(speed_seed).uniform(0.5, 3.0, procs))
    m = MachineModel(procs, speeds=speeds)
    for algo in ("heft", "flb", "mcp", "fcp", "hlfet", "dsc-llb"):
        s = SCHEDULERS[algo](g, machine=m)
        assert s.complete
        assert s.violations() == [], f"{algo} invalid on hetero machine"
