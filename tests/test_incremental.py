"""Warm-start incremental rescheduling: hashes, differ, replay, wiring.

Four layers of guarantees, strongest first:

* **Hash stability** — the upward subgraph hash is a pure function of a
  task's ancestor closure: invariant under edge insertion order and under
  ``relabeled()`` permutations (with explicit names), and a mutation
  dirties *exactly* the mutated task's descendant closure.  The
  incremental (diff-seeded) hashes equal a from-scratch sweep bitwise.
* **Replay equivalence** — a 200-pair fuzz across every FLB kernel
  backend: warm-starting from the base schedule is bit-identical to the
  cold run on the mutated graph, and warm results pass the independent
  certifier.  This is exact ``==``, never ``approx`` — warm-start is a
  pure execution shortcut, not an approximation.
* **Fallback discipline** — every non-reusable case (wrong machine,
  wrong tie rule, incomplete base, dirtied entry) silently runs cold
  with the right ``incr_fallback_total`` reason, never a wrong schedule.
* **Wiring** — ``SchedulingOptions(warm_start=True)`` round-trips
  through :func:`repro.api.schedule_graph`, the batch plane
  (``BatchJob.base_fingerprint`` → ``BatchResult.warm``), the base-LRU,
  the serve payload, and the trace report's cache/warm sections.
"""

import numpy as np
import pytest

from repro.api import SchedulingOptions, schedule_graph
from repro.batch import BatchJob, BatchScheduler, schedule_many
from repro.core.flb_array import flb_array, numba_available
from repro.graph.properties import (
    bottom_levels,
    subgraph_hash_array,
    subgraph_hashes,
)
from repro.graph.taskgraph import TaskGraph
from repro.incremental import (
    GraphDiff,
    ScheduleBaseCache,
    base_cache,
    diff_prefix,
    incremental_subgraph_hashes,
)
from repro.machine import MachineModel
from repro.obs.metrics import MetricsRegistry
from repro.util.rng import make_rng
from repro.verify import certify as certify_schedule
from repro.verify import greedy_flavor
from repro.workloads import erdos_dag, layered_random, lu, stencil

from tests.test_fastpath_equivalence import assert_bit_identical


# ---------------------------------------------------------------------------
# Graph-mutation helpers (TaskGraph is append-only once built, so mutants
# are rebuilt from scratch with targeted overrides)
# ---------------------------------------------------------------------------


def _rebuild(graph, comp=None, comm=None, name=None, extra_tasks=(),
             extra_edges=(), edge_order=None):
    """A fresh graph equal to ``graph`` except for the given overrides.

    ``comp``/``name`` map task id to a new value; ``comm`` maps ``(src,
    dst)`` to a new cost; ``extra_tasks`` appends ``(comp, name)`` pairs
    and ``extra_edges`` appends ``(src, dst, comm)`` triples.
    ``edge_order`` permutes the edge *insertion* order (ids unchanged).
    """
    comp = comp or {}
    comm = comm or {}
    name = name or {}
    out = TaskGraph()
    for t in range(graph.num_tasks):
        out.add_task(comp.get(t, graph.comp(t)), name.get(t, graph._names[t]))
    for c, nm in extra_tasks:
        out.add_task(c, nm)
    edges = list(graph.edges())
    if edge_order is not None:
        edges = [edges[i] for i in edge_order]
    for s, d, c in edges:
        out.add_edge(s, d, comm.get((s, d), c))
    for s, d, c in extra_edges:
        out.add_edge(s, d, c)
    return out.freeze()


def _descendants(graph, task):
    """``task`` plus everything reachable from it."""
    seen = {task}
    stack = [task]
    while stack:
        for s in graph.succs(stack.pop()):
            if s not in seen:
                seen.add(s)
                stack.append(s)
    return seen


def _mutate(graph, rng, kind):
    """One of the five serving-traffic mutation shapes; returns the mutant
    and the id of the directly-touched task (or None for appends)."""
    t = int(rng.integers(graph.num_tasks))
    if kind == "comp-down":
        return _rebuild(graph, comp={t: graph.comp(t) * 0.5}), t
    if kind == "comp-up":
        return _rebuild(graph, comp={t: graph.comp(t) * 2.0 + 1.0}), t
    if kind == "comm":
        edges = list(graph.edges())
        if not edges:
            return _rebuild(graph, comp={t: graph.comp(t) + 1.0}), t
        s, d, c = edges[int(rng.integers(len(edges)))]
        return _rebuild(graph, comm={(s, d): c + 1.0}), d
    if kind == "append":
        new_id = graph.num_tasks
        srcs = rng.choice(graph.num_tasks, size=min(2, graph.num_tasks),
                          replace=False)
        return _rebuild(
            graph, extra_tasks=[(3.0, None)],
            extra_edges=[(int(s), new_id, 1.0) for s in srcs],
        ), None
    if kind == "rename":
        return _rebuild(graph, name={t: f"renamed-{t}"}), t
    raise AssertionError(kind)


# ---------------------------------------------------------------------------
# Subgraph-hash stability
# ---------------------------------------------------------------------------


class TestSubgraphHashes:
    def test_deterministic_across_builds(self):
        g1 = erdos_dag(40, 0.2, make_rng(1), ccr=1.0)
        g2 = erdos_dag(40, 0.2, make_rng(1), ccr=1.0)
        assert subgraph_hashes(g1) == subgraph_hashes(g2)

    def test_invariant_under_edge_insertion_order(self):
        g = erdos_dag(40, 0.2, make_rng(2), ccr=1.0)
        perm = make_rng(3).permutation(g.num_edges)
        shuffled = _rebuild(g, edge_order=perm.tolist())
        assert subgraph_hashes(g) == subgraph_hashes(shuffled)

    def test_invariant_under_relabeling_with_explicit_names(self):
        # Default names are id-derived ("t{id}"), so relabel invariance is
        # only promised once tasks carry explicit names — same contract as
        # TaskGraph.fingerprint().
        g = _rebuild(
            erdos_dag(30, 0.25, make_rng(4), ccr=1.0),
            name={t: f"task-{t}" for t in range(30)},
        )
        rng = make_rng(5)
        perm = rng.permutation(g.num_tasks).tolist()
        relabeled = g.relabeled(perm)
        h1 = subgraph_hashes(g)
        h2 = subgraph_hashes(relabeled)
        for old in range(g.num_tasks):
            assert h1[old] == h2[perm[old]]

    @pytest.mark.parametrize("kind", ["comp-down", "comm", "rename"])
    def test_mutation_dirties_exactly_descendants(self, kind):
        g = layered_random(6, 6, make_rng(6), edge_density=0.3, ccr=1.0)
        mutant, touched = _mutate(g, np.random.default_rng(7), kind)
        h_base = subgraph_hashes(g)
        h_new = subgraph_hashes(mutant)
        changed = {t for t in range(g.num_tasks) if h_base[t] != h_new[t]}
        assert changed == _descendants(mutant, touched)

    @pytest.mark.parametrize(
        "kind", ["comp-down", "comp-up", "comm", "append", "rename"]
    )
    def test_incremental_hashes_match_full_sweep(self, kind):
        for i in range(20):
            g = erdos_dag(10 + i * 3, 0.2, make_rng(100 + i), ccr=1.0)
            mutant, _ = _mutate(g, np.random.default_rng(200 + i), kind)
            fresh = _rebuild(mutant)  # no cache: full from-scratch sweep
            dirty = incremental_subgraph_hashes(mutant, g)
            assert subgraph_hashes(mutant) == subgraph_hashes(fresh)
            # The mask covers every hash that actually changed.
            h_base, h_new = subgraph_hashes(g), subgraph_hashes(mutant)
            vc = min(g.num_tasks, mutant.num_tasks)
            for t in range(vc):
                if h_base[t] != h_new[t]:
                    assert dirty[t]

    def test_hash_array_matches_list(self):
        g = lu(6, make_rng(8))
        arr = subgraph_hash_array(g)
        lst = subgraph_hashes(g)
        assert arr.shape == (g.num_tasks,)
        assert [bytes(x) for x in arr] == lst


# ---------------------------------------------------------------------------
# The differ
# ---------------------------------------------------------------------------


class TestDiffPrefix:
    def test_identical_graph_reuses_everything(self):
        g = stencil(6, 10, make_rng(9))
        base = flb_array(g, 4, backend="array")
        diff = diff_prefix(base, _rebuild(g))
        assert isinstance(diff, GraphDiff)
        assert diff.reuse_steps == g.num_tasks
        assert diff.changed == 0 and diff.dirty == 0
        assert diff.reuse_fraction == 1.0

    def test_dirty_entry_task_kills_the_prefix(self):
        g = stencil(6, 10, make_rng(10))
        entry = g.entry_tasks[0]
        base = flb_array(g, 4, backend="array")
        mutant = _rebuild(g, comp={entry: g.comp(entry) * 0.5})
        assert diff_prefix(base, mutant).reuse_steps == 0

    def test_late_mutation_keeps_a_large_prefix(self):
        g = stencil(8, 30, make_rng(11))
        base = flb_array(g, 4, backend="array")
        exit_task = g.exit_tasks[0]
        mutant = _rebuild(g, comp={exit_task: g.comp(exit_task) * 0.5})
        diff = diff_prefix(base, mutant)
        assert diff.reuse_fraction > 0.5
        assert diff.reuse_steps < g.num_tasks

    def test_unrelated_graph_is_harmless(self):
        g = stencil(6, 10, make_rng(12))
        other = lu(7, make_rng(13))
        base = flb_array(g, 4, backend="array")
        diff = diff_prefix(base, other)
        assert 0 <= diff.reuse_steps <= other.num_tasks


# ---------------------------------------------------------------------------
# Replay equivalence: warm == cold, bit for bit, across kernels
# ---------------------------------------------------------------------------


_KINDS = ("comp-down", "comp-up", "comm", "append", "rename")


def _warm_backends():
    backends = ["array"]
    if numba_available():
        backends.append("numba")
    return backends


class TestWarmColdEquivalence:
    def test_fuzz_200_pairs_bit_identical_and_certified(self):
        backends = _warm_backends()
        flavor = greedy_flavor("flb")
        served = 0
        fallbacks = 0
        for i in range(200):
            rng = make_rng(40_000 + i)
            nrng = np.random.default_rng(41_000 + i)
            if i % 3 == 0:
                g = erdos_dag(10 + (i * 7) % 50, 0.08 + (i % 5) * 0.06,
                              rng, ccr=(0.2, 1.0, 5.0)[i % 3])
            elif i % 3 == 1:
                g = layered_random(2 + i % 6, 2 + i % 5, rng,
                                   edge_density=0.15 + (i % 4) * 0.2)
            else:
                g = stencil(3 + i % 5, 3 + i % 6, rng, ccr=1.0)
            mutant, _ = _mutate(g, nrng, _KINDS[i % len(_KINDS)])
            procs = (1, 2, 3, 8)[i % 4]
            prefer = (i // 2) % 2 == 0
            backend = backends[i % len(backends)]
            base = flb_array(g, procs, prefer_non_ep_on_tie=prefer,
                             backend=backend)
            cold = flb_array(_rebuild(mutant), procs,
                             prefer_non_ep_on_tie=prefer, backend=backend)
            stats = {}
            warm = flb_array(mutant, procs, prefer_non_ep_on_tie=prefer,
                             backend=backend, base=base, warm_stats=stats)
            assert_bit_identical(cold, warm, f"pair {i}: cold vs warm")
            if "fallback" in stats:
                fallbacks += 1
                assert stats["fallback"] == "no-clean-prefix"
            else:
                served += 1
                assert stats["reused"] >= 1
                if prefer:
                    cert = certify_schedule(warm, flavor=flavor)
                    assert cert.ok, (
                        f"pair {i}: {[v.code for v in cert.violations]}"
                    )
        # The sweep must actually exercise the warm path, not fall back
        # its way to a vacuous pass.
        assert served >= 80, f"only {served}/200 pairs warm-served"

    @pytest.mark.parametrize(
        "machine",
        [
            MachineModel(3, latency=0.5),
            MachineModel(4, comm_scale=2.5),
            MachineModel(4, speeds=(1.0, 2.0, 0.5, 1.5)),
        ],
    )
    def test_machine_variants_replay_bit_identical(self, machine):
        g = layered_random(7, 6, make_rng(14), edge_density=0.3, ccr=2.0)
        exit_task = g.exit_tasks[0]
        mutant = _rebuild(g, comp={exit_task: g.comp(exit_task) * 0.5})
        base = flb_array(g, machine=machine, backend="array")
        cold = flb_array(_rebuild(mutant), machine=machine, backend="array")
        warm = flb_array(mutant, machine=machine, backend="array", base=base)
        assert_bit_identical(cold, warm, "machine variant")


# ---------------------------------------------------------------------------
# Fallback discipline
# ---------------------------------------------------------------------------


class TestFallbacks:
    def _base(self, g, **kwargs):
        return flb_array(g, 4, backend="array", **kwargs)

    def _attempt(self, g, base, **kwargs):
        reg = MetricsRegistry()
        stats = {}
        schedule = flb_array(g, 4, backend="array", base=base,
                             warm_stats=stats, metrics=reg, **kwargs)
        return schedule, stats, reg

    def test_machine_mismatch_falls_back(self):
        g = stencil(5, 8, make_rng(15))
        base = flb_array(g, machine=MachineModel(4, latency=0.5),
                         backend="array")
        schedule, stats, reg = self._attempt(_rebuild(g), base)
        assert stats["fallback"] == "machine-mismatch"
        assert reg.total("incr_fallback_total") == 1.0
        assert reg.total("incr_attempts_total") == 1.0
        assert_bit_identical(self._base(_rebuild(g)), schedule, "mismatch")

    def test_tie_rule_mismatch_falls_back(self):
        g = stencil(5, 8, make_rng(16))
        base = self._base(g, prefer_non_ep_on_tie=False)
        _, stats, reg = self._attempt(_rebuild(g), base,
                                      prefer_non_ep_on_tie=True)
        assert stats["fallback"] == "tie-rule-mismatch"
        assert reg.total("incr_fallback_total") == 1.0

    def test_incomplete_base_falls_back(self):
        from repro.schedule import Schedule
        from repro.schedulers.base import resolve_machine

        g = stencil(5, 8, make_rng(17)).freeze()
        partial = Schedule(g, resolve_machine(4, None))
        partial.place(g.entry_tasks[0], 0, 0.0)
        _, stats, _ = self._attempt(_rebuild(g), partial)
        assert stats["fallback"] == "base-incomplete"

    def test_dirty_entry_falls_back_with_no_clean_prefix(self):
        g = stencil(5, 8, make_rng(18))
        entry = g.entry_tasks[0]
        base = self._base(g)
        mutant = _rebuild(g, comp={entry: g.comp(entry) * 2.0})
        schedule, stats, reg = self._attempt(mutant, base)
        assert stats["fallback"] == "no-clean-prefix"
        assert reg.total("incr_fallback_total") == 1.0
        assert_bit_identical(self._base(_rebuild(mutant)), schedule, "dirty")

    def test_warm_success_records_reuse_metrics(self):
        g = stencil(5, 20, make_rng(19))
        exit_task = g.exit_tasks[0]
        base = self._base(g)
        mutant = _rebuild(g, comp={exit_task: g.comp(exit_task) * 0.5})
        _, stats, reg = self._attempt(mutant, base)
        assert "fallback" not in stats
        assert stats["reused"] + stats["replayed"] == stats["total"]
        assert reg.total("incr_warm_total") == 1.0
        assert reg.total("incr_reused_tasks_total") == stats["reused"]


# ---------------------------------------------------------------------------
# The base LRU
# ---------------------------------------------------------------------------


class TestScheduleBaseCache:
    def _schedule(self, seed):
        g = lu(4, make_rng(seed))
        return flb_array(g, 2, backend="array")

    def test_exact_hit_and_stats(self):
        c = ScheduleBaseCache(capacity=2)
        s = self._schedule(1)
        c.put("fp-a", s)
        assert c.get("fp-a") is s
        assert c.stats()["hits"] == 1 and c.stats()["misses"] == 0

    def test_latest_fallback_counts_as_miss(self):
        c = ScheduleBaseCache(capacity=2)
        s1, s2 = self._schedule(1), self._schedule(2)
        c.put("fp-a", s1)
        c.put("fp-b", s2)
        assert c.get("unknown") is s2  # newest base, best delta guess
        assert c.get(None) is s2
        assert c.stats()["hits"] == 0 and c.stats()["misses"] == 2

    def test_lru_eviction(self):
        c = ScheduleBaseCache(capacity=2)
        c.put("a", self._schedule(1))
        c.put("b", self._schedule(2))
        c.get("a")  # refresh a
        c.put("c", self._schedule(3))  # evicts b
        assert c.get("b") is not None  # falls back to latest (c), a miss
        assert c.stats()["evictions"] == 1
        assert len(c) == 2

    def test_empty_cache_returns_none(self):
        c = ScheduleBaseCache()
        assert c.get("anything") is None
        assert c.get() is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ScheduleBaseCache(capacity=0)


# ---------------------------------------------------------------------------
# End-to-end wiring: api / batch / serve / report
# ---------------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _clean_base_cache():
    base_cache().clear()
    yield
    base_cache().clear()


class TestApiWiring:
    def test_schedule_graph_warm_start_round_trip(self):
        g = stencil(6, 15, make_rng(20))
        exit_task = g.exit_tasks[0]
        mutant = _rebuild(g, comp={exit_task: g.comp(exit_task) * 0.5})
        opts = SchedulingOptions(machine=MachineModel(4), kernel="array", warm_start=True)
        schedule_graph(g, opts)  # populates the base LRU
        assert len(base_cache()) == 1
        warm = schedule_graph(mutant, opts)
        cold = schedule_graph(_rebuild(mutant),
                              SchedulingOptions(machine=MachineModel(4), kernel="array"))
        assert_bit_identical(cold, warm, "schedule_graph warm")

    def test_explicit_base_beats_cache(self):
        g = stencil(6, 15, make_rng(21))
        base = flb_array(g, 4, backend="array")
        exit_task = g.exit_tasks[0]
        mutant = _rebuild(g, comp={exit_task: g.comp(exit_task) * 0.5})
        warm = schedule_graph(
            mutant, SchedulingOptions(machine=MachineModel(4), kernel="array"), base=base
        )
        cold = schedule_graph(_rebuild(mutant),
                              SchedulingOptions(machine=MachineModel(4), kernel="array"))
        assert_bit_identical(cold, warm, "explicit base")

    def test_certified_warm_start(self):
        g = stencil(6, 15, make_rng(22))
        exit_task = g.exit_tasks[0]
        mutant = _rebuild(g, comp={exit_task: g.comp(exit_task) * 0.5})
        opts = SchedulingOptions(machine=MachineModel(4), kernel="array", warm_start=True,
                                 certify=True)
        schedule_graph(g, opts)
        schedule = schedule_graph(mutant, opts)  # raises if cert fails
        assert schedule.complete


class TestBatchWiring:
    def test_base_fingerprint_serves_warm(self):
        g = stencil(6, 15, make_rng(23))
        exit_task = g.exit_tasks[0]
        mutant = _rebuild(g, comp={exit_task: g.comp(exit_task) * 0.5})
        reg = MetricsRegistry()
        opts = SchedulingOptions(warm_start=True, kernel="array", metrics=reg)
        r1 = schedule_many([BatchJob(graph=g, procs=4)], workers=1,
                           options=opts)
        assert r1[0].ok and r1[0].warm is None
        r2 = schedule_many(
            [BatchJob(graph=mutant, procs=4,
                      base_fingerprint=g.fingerprint())],
            workers=1, options=opts,
        )
        assert r2[0].ok
        assert r2[0].warm is not None and "fallback" not in r2[0].warm
        assert r2[0].kernel == "array"
        assert reg.total("incr_warm_total") == 1.0
        cold = schedule_graph(_rebuild(mutant),
                              SchedulingOptions(machine=MachineModel(4), kernel="array"))
        assert r2[0].makespan == cold.makespan

    def test_warm_off_leaves_results_unannotated(self):
        g = stencil(5, 8, make_rng(24))
        res = schedule_many(
            [BatchJob(graph=g, procs=4)], workers=1,
            options=SchedulingOptions(kernel="array"),
        )
        assert res[0].ok and res[0].warm is None

    def test_batch_scheduler_stats_expose_base_cache(self):
        g = stencil(5, 8, make_rng(25))
        with BatchScheduler(
            options=SchedulingOptions(warm_start=True, kernel="array")
        ) as bs:
            bs.run([BatchJob(graph=g, procs=4)])
            stats = bs.stats()
        assert stats["warm_size"] == 1
        assert "warm_hits" in stats and "warm_evictions" in stats


class TestServeWiring:
    def test_base_fingerprint_reaches_job_and_enables_warm_start(self):
        import asyncio
        import json

        from repro.batch import BatchResult
        from repro.graph.io import to_json
        from repro.serve import SchedulingService, ServeConfig

        captured = []

        def runner(job, options):
            captured.append((job, options))
            return BatchResult(
                tag=job.tag, algo=job.algo, procs=job.procs, num_tasks=15,
                makespan=10.0, speedup=1.5, procs_used=job.procs,
                seconds=0.001, kernel="array",
                warm={"reused": 10, "replayed": 5, "total": 15,
                      "dirty": 1, "fraction": 10 / 15},
            )

        service = SchedulingService(
            config=ServeConfig(max_backlog=8), runner=runner
        )
        try:
            doc = json.loads(to_json(lu(5, make_rng(0))))
            reg = service.register_graph({"graph": doc})
            fp = reg["fingerprint"]

            async def body():
                service.start()
                result = await service.submit(
                    {"fingerprint": fp, "procs": 4, "base_fingerprint": fp}
                )
                await service.drain()
                return result

            result = asyncio.run(body())
            job, options = captured[0]
            assert job.base_fingerprint == fp
            assert options.warm_start is True
            assert result["warm"]["reused"] == 10
        finally:
            service.close()

    def test_bad_base_fingerprint_type_is_rejected(self):
        import json

        from repro.graph.io import to_json
        from repro.serve import (
            BadRequestError,
            SchedulingService,
            ServeConfig,
        )

        service = SchedulingService(config=ServeConfig(max_backlog=8))
        try:
            doc = json.loads(to_json(lu(5, make_rng(0))))
            fp = service.register_graph({"graph": doc})["fingerprint"]
            with pytest.raises(BadRequestError):
                service._prepare(
                    {"fingerprint": fp, "procs": 4, "base_fingerprint": 7}
                )
        finally:
            service.close()


class TestReportWiring:
    def test_trace_report_gains_cache_and_warm_sections(self, tmp_path):
        from repro.obs.report import render_report, summarize_trace
        from repro.obs.trace import read_trace
        from repro.resultcache import ResultCache

        g = stencil(6, 15, make_rng(26))
        exit_task = g.exit_tasks[0]
        mutant = _rebuild(g, comp={exit_task: g.comp(exit_task) * 0.5})
        reg = MetricsRegistry()
        cache = ResultCache(16)
        opts = SchedulingOptions(warm_start=True, kernel="array", metrics=reg)
        schedule_many([BatchJob(graph=g, procs=4)], workers=1, options=opts,
                      cache=cache)
        schedule_many(
            [BatchJob(graph=mutant, procs=4,
                      base_fingerprint=g.fingerprint())],
            workers=1, options=opts, cache=cache,
        )
        schedule_many([BatchJob(graph=_rebuild(mutant), procs=4)], workers=1,
                      options=opts, cache=cache)  # result-cache hit

        path = tmp_path / "trace.jsonl"
        reg.write_trace(str(path))
        events = read_trace(str(path))
        summary = summarize_trace(events)
        assert summary["cache"]["batches"] == 3
        assert summary["cache"]["hits"] == 1
        assert summary["cache"]["hit_rate"] > 0
        assert summary["warm"]["served"] == 1
        assert summary["warm"]["mean_reuse"] > 0.5
        assert summary["warm"]["fallbacks"] == {}
        text = render_report(events)
        assert "serving cache:" in text
        assert "warm-start:" in text

    def test_copy_preserves_fingerprint_and_hash_caches(self):
        g = stencil(5, 8, make_rng(27))
        fp = g.fingerprint()
        hashes = subgraph_hashes(g)
        clone = g.copy()
        assert clone._fingerprint == fp
        assert clone._prop_cache.get("subh") == hashes
        assert clone.fingerprint() == fp
