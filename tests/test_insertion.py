"""Tests for insertion-based placement: Schedule gap machinery and the
mcp-i / hlfet-i scheduler variants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ScheduleError
from repro.graph import TaskGraph
from repro.machine import MachineModel
from repro.schedule import Schedule
from repro.schedulers import SCHEDULERS, hlfet_insertion, mcp_insertion
from repro.schedulers.insertion import best_insertion_slot
from repro.sim import execute
from repro.util.rng import make_rng
from repro.workloads import erdos_dag, fork_join, lu, lu_chain, paper_example


def gap_graph():
    """Three tasks; placing 1 and 2 first leaves a [2, 6) gap on p0."""
    g = TaskGraph()
    for _ in range(4):
        g.add_task(2.0)
    return g.freeze()


class TestScheduleInsertion:
    def test_insert_into_gap(self):
        g = gap_graph()
        s = Schedule(g, MachineModel(1))
        s.place(0, 0, 0.0)
        s.place(1, 0, 6.0)
        entry = s.place(2, 0, 2.0, insertion=True)
        assert entry.finish == 4.0
        assert s.proc_tasks(0) == (0, 2, 1)  # sorted by start
        s.place(3, 0, 8.0)
        assert s.violations() == []
        assert s.prt(0) == 10.0

    def test_insert_overlap_prev_rejected(self):
        g = gap_graph()
        s = Schedule(g, MachineModel(1))
        s.place(0, 0, 0.0)
        s.place(1, 0, 6.0)
        with pytest.raises(ScheduleError):
            s.place(2, 0, 1.0, insertion=True)  # overlaps task 0

    def test_insert_overlap_next_rejected(self):
        g = gap_graph()
        s = Schedule(g, MachineModel(1))
        s.place(0, 0, 0.0)
        s.place(1, 0, 6.0)
        with pytest.raises(ScheduleError):
            s.place(2, 0, 5.0, insertion=True)  # runs into task 1

    def test_early_place_without_flag_rejected(self):
        g = gap_graph()
        s = Schedule(g, MachineModel(1))
        s.place(0, 0, 0.0)
        s.place(1, 0, 6.0)
        with pytest.raises(ScheduleError):
            s.place(2, 0, 2.0)

    def test_negative_start_rejected(self):
        g = gap_graph()
        s = Schedule(g, MachineModel(1))
        with pytest.raises(ScheduleError):
            s.place(0, 0, -1.0, insertion=True)

    def test_prt_unchanged_by_gap_fill(self):
        g = gap_graph()
        s = Schedule(g, MachineModel(1))
        s.place(0, 0, 6.0)
        assert s.prt(0) == 8.0
        s.place(1, 0, 0.0, insertion=True)
        assert s.prt(0) == 8.0


class TestEarliestGap:
    def test_empty_processor(self):
        g = gap_graph()
        s = Schedule(g, MachineModel(1))
        assert s.earliest_gap(0, 3.0, 2.0) == 3.0
        assert s.earliest_gap(0, -5.0, 2.0) == 0.0

    def test_finds_first_fitting_gap(self):
        g = gap_graph()
        s = Schedule(g, MachineModel(1))
        s.place(0, 0, 0.0)  # [0, 2)
        s.place(1, 0, 3.0)  # [3, 5)
        s.place(2, 0, 9.0)  # [9, 11)
        # Gap [2,3) too small for duration 2; [5,9) fits.
        assert s.earliest_gap(0, 0.0, 2.0) == 5.0
        # Duration 1 fits right after task 0.
        assert s.earliest_gap(0, 0.0, 1.0) == 2.0
        # Lower bound inside a gap.
        assert s.earliest_gap(0, 6.0, 2.0) == 6.0
        # Nothing fits before the end.
        assert s.earliest_gap(0, 0.0, 5.0) == 11.0

    def test_lower_bound_inside_task(self):
        g = gap_graph()
        s = Schedule(g, MachineModel(1))
        s.place(0, 0, 0.0)
        assert s.earliest_gap(0, 1.0, 1.0) == 2.0


class TestInsertionSchedulers:
    @pytest.mark.parametrize("algo", ["mcp-i", "hlfet-i"])
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: paper_example(),
            lambda: lu(9, make_rng(0), ccr=5.0),
            lambda: lu_chain(9, make_rng(1), ccr=5.0),
            lambda: fork_join(3, 6, make_rng(2), ccr=2.0),
        ],
    )
    @pytest.mark.parametrize("procs", [1, 3])
    def test_valid(self, algo, builder, procs):
        s = SCHEDULERS[algo](builder(), procs)
        assert s.complete
        assert s.violations() == []

    def test_insertion_helps_on_average(self):
        """Insertion dominates per placement but placements cascade, so it
        is not a per-instance guarantee; on average over a seed sweep it
        must not lose."""
        ratios = []
        for seed in range(10):
            g = erdos_dag(35, 0.2, make_rng(seed), ccr=3.0)
            base = SCHEDULERS["mcp"](g, 4, seed=0).makespan
            ins = mcp_insertion(g, 4, seed=0).makespan
            ratios.append(ins / base)
        assert sum(ratios) / len(ratios) <= 1.02

    def test_insertion_helps_hlfet_on_average(self):
        ratios = []
        for seed in range(10):
            g = erdos_dag(35, 0.2, make_rng(seed), ccr=3.0)
            ratios.append(hlfet_insertion(g, 4).makespan / SCHEDULERS["hlfet"](g, 4).makespan)
        assert sum(ratios) / len(ratios) <= 1.02

    def test_insertion_can_strictly_help(self):
        """On communication-stalled graphs insertion should win at least
        once across a handful of seeds."""
        improved = False
        for seed in range(10):
            g = lu_chain(10, make_rng(seed), ccr=5.0)
            if mcp_insertion(g, 4, seed=0).makespan < SCHEDULERS["mcp"](g, 4, seed=0).makespan - 1e-9:
                improved = True
                break
        assert improved

    def test_best_insertion_slot_prefers_gap(self):
        g = gap_graph()
        s = Schedule(g, MachineModel(2))
        s.place(0, 0, 0.0)
        s.place(1, 0, 6.0)
        s.place(2, 1, 0.0)
        proc, start = best_insertion_slot(s, 3)
        assert (proc, start) == (0, 2.0)  # the gap beats both queue ends

    def test_gantt_renders_inserted_schedules(self):
        from repro.schedule import render_gantt

        g = lu(7, make_rng(3), ccr=5.0)
        s = mcp_insertion(g, 3)
        text = render_gantt(s, width=60)
        assert text.count("\n") >= 2


class TestInsertionExecutorCompat:
    def test_executor_respects_inserted_order(self):
        """Self-timed replay follows per-processor *order*; for inserted
        schedules the replayed times must still be dependency-valid and can
        only be earlier or equal where gaps were artificial."""
        g = lu(8, make_rng(4), ccr=5.0)
        s = mcp_insertion(g, 3)
        result = execute(s)
        assert result.makespan <= s.makespan + 1e-6


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(2, 30),
    p=st.floats(0.0, 0.5),
    ccr=st.floats(0.1, 6.0),
    procs=st.integers(1, 6),
    seed=st.integers(0, 5000),
)
def test_property_insertion_valid(n, p, ccr, procs, seed):
    g = erdos_dag(n, p, make_rng(seed), ccr=ccr)
    ins = mcp_insertion(g, procs, seed=0)
    assert ins.complete
    assert ins.violations() == []
