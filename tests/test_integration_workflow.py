"""End-to-end integration: the full user workflow through the public API.

generate -> analyze -> schedule -> validate -> persist -> reload ->
re-execute -> perturb -> inspect.  One test per workflow stage would hide
inter-stage bugs; this file deliberately chains them.
"""

import pytest

from repro import schedule_graph
from repro.graph import (
    ccr,
    critical_path_length,
    from_json,
    to_json,
    width,
)
from repro.machine import MachineModel
from repro.metrics import efficiency, speedup, summarize
from repro.schedule import (
    critical_tasks,
    idle_profile,
    load_schedule,
    render_gantt,
    render_gantt_svg,
    save_schedule,
    slack_times,
)
from repro.sim import execute, execute_contended, execute_perturbed
from repro.util.rng import make_rng
from repro.workloads import cholesky, wavefront


@pytest.fixture(scope="module")
def workflow(tmp_path_factory):
    """Run the whole pipeline once; tests inspect its artefacts."""
    tmp = tmp_path_factory.mktemp("workflow")
    graph = cholesky(6, make_rng(33), ccr=2.0)

    # Round-trip the graph itself first.
    graph = from_json(to_json(graph))

    schedule = schedule_graph(graph, 4, algorithm="flb")
    schedule.validate()

    path = tmp / "schedule.json"
    save_schedule(schedule, path)
    reloaded = load_schedule(path)

    return {
        "graph": graph,
        "schedule": schedule,
        "reloaded": reloaded,
        "path": path,
    }


class TestWorkflow:
    def test_graph_roundtrip_preserved_analysis(self, workflow):
        g = workflow["graph"]
        assert width(g) >= 1
        assert critical_path_length(g) > 0
        assert ccr(g) == pytest.approx(2.0, rel=1e-9)

    def test_reloaded_schedule_identical(self, workflow):
        s, r = workflow["schedule"], workflow["reloaded"]
        assert r.makespan == pytest.approx(s.makespan)
        for t in workflow["graph"].tasks():
            assert r.proc_of(t) == s.proc_of(t)
            assert r.start_of(t) == pytest.approx(s.start_of(t))

    def test_replay_matches_after_reload(self, workflow):
        result = execute(workflow["reloaded"])
        assert result.matches(workflow["reloaded"])

    def test_metrics_consistent(self, workflow):
        s = workflow["schedule"]
        d = summarize(s)
        assert d["makespan"] == pytest.approx(s.makespan)
        assert speedup(s) == pytest.approx(d["speedup"])
        assert 0 < efficiency(s) <= 1

    def test_analysis_on_reloaded(self, workflow):
        r = workflow["reloaded"]
        slack = slack_times(r)
        assert min(slack) == pytest.approx(0.0, abs=1e-9)
        assert critical_tasks(r)
        profile = idle_profile(r)
        total = (
            sum(profile.busy)
            + profile.total_idle
        )
        assert total == pytest.approx(r.makespan * r.num_procs)

    def test_renderings(self, workflow):
        s = workflow["schedule"]
        assert "P0" in render_gantt(s)
        assert render_gantt_svg(s).startswith("<svg")

    def test_degradation_models_compose(self, workflow):
        s = workflow["reloaded"]
        perturbed = execute_perturbed(s, make_rng(1), 0.2, 0.2)
        contended = execute_contended(s, bandwidth=1.0)
        assert perturbed.makespan > 0
        assert contended.makespan >= s.makespan - 1e-9

    def test_cross_algorithm_consistency(self, workflow):
        """Every registry algorithm schedules the same reloaded graph; all
        valid, all within a sane quality band of each other."""
        from repro.schedulers import SCHEDULERS

        g = workflow["graph"]
        spans = {}
        for algo in sorted(SCHEDULERS):
            s = SCHEDULERS[algo](g, 4)
            assert s.violations() == [], algo
            spans[algo] = s.makespan
        assert max(spans.values()) <= 2.5 * min(spans.values())


class TestHeterogeneousWorkflow:
    def test_full_pipeline_on_skewed_machine(self, tmp_path):
        graph = wavefront(8, make_rng(44), ccr=1.0)
        machine = MachineModel(3, speeds=(2.0, 1.0, 1.0))
        s = schedule_graph(graph, None, algorithm="heft", machine=machine)
        s.validate()
        path = tmp_path / "hetero.json"
        save_schedule(s, path)
        r = load_schedule(path)
        assert r.machine == machine
        assert execute(r).makespan <= r.makespan + 1e-6
