"""Kernel selection semantics for the array-native FLB plane.

``resolve_kernel`` is the single decision point every entry point routes
through (``SchedulingOptions.kernel``, ``REPRO_KERNEL``, the CLI
``--kernel`` flag).  These tests pin its contract:

* ``auto`` picks the fastest available backend: numba when importable,
  the interpreted array kernel otherwise (object is never auto-picked —
  the array kernel needs only NumPy, a hard dependency).
* ``REPRO_KERNEL`` beats the in-code request (deployment override).
* An explicit ``numba`` request without numba warns exactly once per
  process, then falls back to ``array``; ``auto`` falls back silently.
* Invalid values raise :class:`KernelSelectionError` naming the valid set.

The probe/latch state is module-global, so every test resets it via
``_reset_kernel_state`` and monkeypatches ``_numba_probe`` instead of
relying on whether the test environment has numba installed.
"""

import warnings

import pytest

import repro.core.flb_array as flb_array_mod
from repro.api import SchedulingOptions, schedule_graph
from repro.core.flb import flb
from repro.machine import MachineModel
from repro.core.flb_array import (
    KERNEL_CHOICES,
    KernelSelectionError,
    numba_available,
    resolve_kernel,
)
from repro.util.rng import make_rng
from repro.workloads import erdos_dag


@pytest.fixture(autouse=True)
def fresh_kernel_state(monkeypatch):
    """Isolate the probe cache / warn-once latch and the env override."""
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    flb_array_mod._reset_kernel_state()
    yield
    flb_array_mod._reset_kernel_state()


def _force_numba(monkeypatch, present: bool) -> None:
    monkeypatch.setattr(flb_array_mod, "_numba_probe", present)


class TestAutoOrder:
    def test_auto_picks_numba_when_available(self, monkeypatch):
        _force_numba(monkeypatch, True)
        assert resolve_kernel("auto") == "numba"

    def test_auto_falls_back_to_array_without_numba(self, monkeypatch):
        _force_numba(monkeypatch, False)
        assert resolve_kernel("auto") == "array"

    def test_auto_never_resolves_to_object(self, monkeypatch):
        for present in (True, False):
            _force_numba(monkeypatch, present)
            assert resolve_kernel("auto") != "object"

    def test_default_request_is_auto(self, monkeypatch):
        _force_numba(monkeypatch, False)
        assert resolve_kernel() == "array"

    def test_explicit_choices_pass_through(self, monkeypatch):
        _force_numba(monkeypatch, True)
        assert resolve_kernel("object") == "object"
        assert resolve_kernel("array") == "array"
        assert resolve_kernel("numba") == "numba"


class TestEnvOverride:
    def test_env_beats_argument(self, monkeypatch):
        _force_numba(monkeypatch, True)
        monkeypatch.setenv("REPRO_KERNEL", "object")
        assert resolve_kernel("numba") == "object"

    def test_env_is_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "ARRAY")
        assert resolve_kernel("object") == "array"

    def test_env_auto_still_resolves(self, monkeypatch):
        _force_numba(monkeypatch, False)
        monkeypatch.setenv("REPRO_KERNEL", "auto")
        assert resolve_kernel("object") == "array"

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "cuda")
        with pytest.raises(KernelSelectionError, match="REPRO_KERNEL"):
            resolve_kernel("array")

    def test_empty_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "  ")
        assert resolve_kernel("object") == "object"

    def test_env_routes_schedule_graph(self, monkeypatch):
        graph = erdos_dag(40, 0.2, make_rng(5))
        monkeypatch.setenv("REPRO_KERNEL", "array")
        ref = flb(graph, 4)
        sched = schedule_graph(graph, SchedulingOptions(machine=MachineModel(4), kernel="object"))
        assert sched.makespan == ref.makespan
        assert all(
            sched.proc_of(t) == ref.proc_of(t)
            and sched.start_of(t) == ref.start_of(t)
            for t in range(graph.num_tasks)
        )


class TestMissingNumba:
    def test_explicit_numba_warns_exactly_once(self, monkeypatch):
        _force_numba(monkeypatch, False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert resolve_kernel("numba") == "array"
            assert resolve_kernel("numba") == "array"
            assert resolve_kernel("numba") == "array"
        fallback = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(fallback) == 1
        assert "numba is not installed" in str(fallback[0].message)

    def test_auto_fallback_is_silent(self, monkeypatch):
        _force_numba(monkeypatch, False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert resolve_kernel("auto") == "array"
        assert not caught

    def test_reset_kernel_state_rearms_the_warning(self, monkeypatch):
        """Regression: the warn-once latch was process-global with no reset
        — after one fallback warning, every later embedder (or test) in the
        same process silently got ``array`` with no hint why.  The public
        ``reset_kernel_state`` restores the pristine state."""
        _force_numba(monkeypatch, False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert resolve_kernel("numba") == "array"
            assert resolve_kernel("numba") == "array"  # latched: silent
            flb_array_mod.reset_kernel_state()
            _force_numba(monkeypatch, False)  # reset also clears the probe
            assert resolve_kernel("numba") == "array"  # re-armed: warns again
        fallback = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(fallback) == 2

    def test_reset_kernel_state_clears_the_probe_cache(self, monkeypatch):
        _force_numba(monkeypatch, True)
        assert resolve_kernel("auto") == "numba"
        flb_array_mod.reset_kernel_state()
        assert flb_array_mod._numba_probe is None

    def test_reset_is_exported_and_aliased(self):
        assert "reset_kernel_state" in flb_array_mod.__all__
        # The pre-public spelling stays importable for existing callers.
        assert flb_array_mod._reset_kernel_state is flb_array_mod.reset_kernel_state

    def test_fallback_schedule_is_still_bit_identical(self, monkeypatch):
        _force_numba(monkeypatch, False)
        graph = erdos_dag(35, 0.2, make_rng(9))
        ref = flb(graph, 3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            sched = schedule_graph(
                graph, SchedulingOptions(machine=MachineModel(3), kernel="numba")
            )
        assert sched.makespan == ref.makespan

    def test_fallback_counts_in_metrics(self, monkeypatch):
        from repro.obs.metrics import MetricsRegistry

        _force_numba(monkeypatch, False)
        reg = MetricsRegistry()
        graph = erdos_dag(25, 0.2, make_rng(2))
        flb_array_mod.flb_array(graph, 2, backend="numba", metrics=reg)
        assert reg.total("flb_kernel_fallback_total") == 1.0
        assert reg.total("flb_kernel_backend_total") == 1.0


class TestInvalidValues:
    def test_invalid_request_raises_named_error(self):
        with pytest.raises(KernelSelectionError) as exc:
            resolve_kernel("vectorized")
        for choice in KERNEL_CHOICES:
            assert choice in str(exc.value)

    def test_invalid_options_field_raises(self):
        with pytest.raises(KernelSelectionError):
            SchedulingOptions(kernel="gpu")

    def test_error_is_a_scheduler_error(self):
        from repro.exceptions import SchedulerError

        assert issubclass(KernelSelectionError, SchedulerError)


class TestProbe:
    def test_probe_is_cached(self, monkeypatch):
        calls = []
        real = flb_array_mod._importlib_util.find_spec

        def counting(name):
            calls.append(name)
            return real(name)

        monkeypatch.setattr(flb_array_mod._importlib_util, "find_spec", counting)
        numba_available()
        numba_available()
        assert calls.count("numba") == 1
