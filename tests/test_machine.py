"""Tests for the machine model."""

import pytest

from repro.machine import MachineModel


class TestMachineModel:
    def test_defaults_match_paper(self):
        m = MachineModel(4)
        assert m.is_paper_model
        assert list(m.procs) == [0, 1, 2, 3]

    def test_same_proc_comm_is_free(self):
        m = MachineModel(2, comm_scale=3.0, latency=5.0)
        assert m.comm_delay(1, 1, 10.0) == 0.0

    def test_cross_proc_delay(self):
        m = MachineModel(2)
        assert m.comm_delay(0, 1, 7.5) == 7.5

    def test_scale_and_latency(self):
        m = MachineModel(2, comm_scale=2.0, latency=1.0)
        assert m.comm_delay(0, 1, 3.0) == 7.0
        assert not m.is_paper_model

    def test_symmetric_clique(self):
        m = MachineModel(5)
        for a in m.procs:
            for b in m.procs:
                assert m.comm_delay(a, b, 2.0) == m.comm_delay(b, a, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineModel(0)
        with pytest.raises(ValueError):
            MachineModel(2, comm_scale=-1.0)
        with pytest.raises(ValueError):
            MachineModel(2, latency=-0.1)

    def test_frozen(self):
        m = MachineModel(2)
        with pytest.raises(AttributeError):
            m.num_procs = 3  # type: ignore[misc]
