"""End-to-end tests for the machine-aware scheduling plane.

:class:`repro.MachineModel` is a first-class member of the public API:
it rides inside :class:`repro.SchedulingOptions`, keys the result cache
and the serve coalescing map via :meth:`MachineModel.fingerprint`, is
accepted and echoed by ``POST /v1/schedule``, and is certified by the
related-machines replay certificate (F003).  These tests pin the plane
together: fingerprint canonicality, the cache-key regression (equal
``num_procs`` but different speeds must never share an entry), exact
homogeneous bit-identity between the legacy integer spelling and the
explicit model, the warm-start machine-mismatch cold fallback, the
adversarial F003 mutant matrix on heterogeneous machines, and the HTTP
round-trip.
"""

import json
import urllib.error
import urllib.request
import warnings

import pytest

from repro import MachineModel, SchedulingOptions, schedule_graph
from repro.batch import BatchJob, schedule_many
from repro.graph.io import to_json
from repro.incremental import base_cache
from repro.resultcache import make_key
from repro.schedulers import SCHEDULERS, heft
from repro.serve import BackgroundServer, ServeConfig
from repro.util.rng import make_rng
from repro.verify import certify, lint_machine
from repro.workloads import layered_random, lu, stencil
from tests.test_fastpath_equivalence import assert_bit_identical
from tests.test_incremental import _rebuild

HETERO_MACHINES = [
    MachineModel(3, speeds=(2.0, 1.0, 0.5)),
    MachineModel(4, comm_scale=2.0, latency=0.5, speeds=(1.0, 1.0, 2.0, 4.0)),
    MachineModel(2, comm_scale=0.25, speeds=(1.0, 3.0)),
]


class TestFingerprint:
    def test_equal_models_fingerprint_equal(self):
        a = MachineModel(4, comm_scale=2.0, latency=0.5, speeds=(1.0, 2.0, 1.0, 4.0))
        b = MachineModel(4, comm_scale=2.0, latency=0.5, speeds=(1.0, 2.0, 1.0, 4.0))
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() == a.fingerprint()  # memo is stable

    def test_every_field_perturbation_changes_digest(self):
        base = MachineModel(4, comm_scale=2.0, latency=0.5)
        variants = [
            MachineModel(5, comm_scale=2.0, latency=0.5),
            MachineModel(4, comm_scale=3.0, latency=0.5),
            MachineModel(4, comm_scale=2.0, latency=0.25),
            MachineModel(4, comm_scale=2.0, latency=0.5,
                         speeds=(1.0, 1.0, 1.0, 2.0)),
        ]
        digests = {m.fingerprint() for m in [base, *variants]}
        assert len(digests) == len(variants) + 1

    def test_explicit_uniform_speeds_differ_from_homogeneous(self):
        # Mirrors `==`: an explicit all-ones vector is a distinct model
        # (graphlint flags it as M004 for exactly this reason).
        implicit = MachineModel(3)
        explicit = MachineModel(3, speeds=(1.0, 1.0, 1.0))
        assert implicit != explicit
        assert implicit.fingerprint() != explicit.fingerprint()
        assert any(i.code == "M004" for i in lint_machine(explicit).issues)

    def test_digest_shape(self):
        fp = MachineModel(2).fingerprint()
        assert len(fp) == 32
        int(fp, 16)  # hex


class TestDictRoundTrip:
    @pytest.mark.parametrize("machine", [MachineModel(4), *HETERO_MACHINES])
    def test_round_trip(self, machine):
        again = MachineModel.from_dict(json.loads(json.dumps(machine.to_dict())))
        assert again == machine
        assert again.fingerprint() == machine.fingerprint()

    def test_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            MachineModel.from_dict({"num_procs": 2, "cores": 8})

    def test_rejects_non_mapping(self):
        with pytest.raises(ValueError):
            MachineModel.from_dict([2])

    def test_rejects_bool_num_procs(self):
        with pytest.raises(ValueError):
            MachineModel.from_dict({"num_procs": True})

    def test_rejects_bad_speeds(self):
        with pytest.raises(ValueError):
            MachineModel.from_dict({"num_procs": 2, "speeds": [1.0, "fast"]})


class TestCacheKeyRegression:
    """Same num_procs, different machine → different cache entries.

    The pre-machine-plane key was ``(fingerprint, procs, algo, validate,
    certify, kernel)``: two requests for P=4 with different speed vectors
    collided and the second caller got the first caller's schedule.  The
    machine fingerprint now rides in the key.
    """

    FP = "deadbeef" * 8

    def _key(self, machine=None, procs=4):
        return make_key(self.FP, procs, "flb", False, False, "array",
                        machine=machine)

    def test_same_procs_different_speeds_never_collide(self):
        a = self._key(MachineModel(4, speeds=(1.0, 1.0, 1.0, 1.0)))
        b = self._key(MachineModel(4, speeds=(2.0, 1.0, 1.0, 1.0)))
        assert a != b

    def test_comm_scale_and_latency_fold_in(self):
        plain = self._key(MachineModel(4))
        scaled = self._key(MachineModel(4, comm_scale=2.0))
        lagged = self._key(MachineModel(4, latency=0.5))
        assert len({plain, scaled, lagged}) == 3

    def test_legacy_integer_aliases_homogeneous_model(self):
        # The two spellings of the paper machine share one entry.
        assert self._key() == self._key(MachineModel(4))

    def test_mismatched_num_procs_rejected(self):
        with pytest.raises(ValueError):
            self._key(MachineModel(3), procs=4)


class TestHomogeneousBitIdentity:
    """``machine=MachineModel(P)`` is bit-identical to ``procs=P`` on every
    entry point — the explicit model must not perturb the paper runs."""

    @pytest.mark.parametrize("algo", ["flb", "etf", "mcp", "heft"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_schedule_graph(self, algo, seed):
        graph = layered_random(5, 6, rng=make_rng(seed))
        modern = schedule_graph(
            graph, SchedulingOptions(machine=MachineModel(4), algorithm=algo)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = schedule_graph(
                graph, SchedulingOptions(procs=4, algorithm=algo)
            )
        assert_bit_identical(legacy, modern, f"{algo}/seed{seed}")

    def test_schedule_many_machine_job(self):
        graph = stencil(5, 4, make_rng(3), ccr=0.5)
        (by_procs,) = schedule_many([BatchJob(graph=graph, procs=4)], workers=1)
        (by_machine,) = schedule_many(
            [BatchJob(graph=graph, machine=MachineModel(4))], workers=1
        )
        assert by_procs.ok and by_machine.ok
        assert by_procs.makespan == by_machine.makespan
        assert by_procs.procs == by_machine.procs == 4


class TestHeterogeneousBatch:
    def test_hetero_jobs_round_trip(self):
        graph = lu(6, make_rng(1), ccr=1.0)
        machine = MachineModel(3, speeds=(2.0, 1.0, 0.5))
        results = schedule_many(
            [
                BatchJob(graph=graph, machine=machine, algo="heft"),
                BatchJob(graph=graph, procs=3, algo="heft"),
            ],
            workers=1,
            options=SchedulingOptions(certify=True),
        )
        assert all(r.ok and r.certified for r in results)
        direct = heft(graph, machine=machine)
        assert results[0].makespan == direct.makespan

    def test_pool_workers_carry_machine(self):
        # The worker payload serialises the machine; a heterogeneous job
        # must come back identical to the inline run.
        graph = lu(6, make_rng(2), ccr=1.0)
        machine = MachineModel(3, comm_scale=2.0, speeds=(1.0, 2.0, 4.0))
        (pooled,) = schedule_many(
            [BatchJob(graph=graph, machine=machine, algo="heft")], workers=2
        )
        assert pooled.ok
        assert pooled.makespan == heft(graph, machine=machine).makespan


class TestWarmStartMachineMismatch:
    def test_options_level_cold_fallback(self):
        """A warm base built for one machine never serves another: the
        kernel reports ``machine-mismatch`` and reruns cold, bit-identical
        to a fresh run on the requested machine."""
        base_cache().clear()
        g = stencil(6, 15, make_rng(30))
        exit_task = g.exit_tasks[0]
        mutant = _rebuild(g, comp={exit_task: g.comp(exit_task) * 0.5})
        opts_a = SchedulingOptions(machine=MachineModel(4), kernel="array",
                                   warm_start=True)
        schedule_graph(g, opts_a)  # populates the base LRU on machine A
        opts_b = SchedulingOptions(
            machine=MachineModel(4, comm_scale=2.0), kernel="array",
            warm_start=True,
        )
        stats = {}
        warm = schedule_graph(mutant, opts_b, warm_stats=stats)
        assert stats.get("fallback") == "machine-mismatch"
        cold = schedule_graph(
            _rebuild(mutant),
            SchedulingOptions(machine=MachineModel(4, comm_scale=2.0),
                              kernel="array"),
        )
        assert_bit_identical(cold, warm, "machine-mismatch fallback")
        base_cache().clear()


def _replay_with_delay(sched, victim, delta):
    """A structurally valid copy of ``sched`` with ``victim`` started
    ``delta`` later.  Rebuilt through ``Schedule._append`` so the internal
    PRT memo stays consistent — the mutant must survive the structural
    rules and fail only the F003 replay."""
    from repro.schedule.schedule import Schedule

    graph = sched.graph
    out = Schedule(graph, sched.machine)
    order = sorted(
        graph.tasks(), key=lambda t: (sched.start_of(t), sched.proc_of(t))
    )
    for t in order:
        start = sched.start_of(t) + (delta if t == victim else 0.0)
        out._append(t, sched.proc_of(t), start)
    return out


class TestF003ReplayCertificate:
    """The related-machines replay certificate: genuine HEFT output passes
    on every machine in the matrix; hand-delayed mutants are rejected."""

    @pytest.mark.parametrize("machine", [MachineModel(4), *HETERO_MACHINES])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_genuine_heft_certifies(self, machine, seed):
        graph = layered_random(5, 6, rng=make_rng(seed))
        cert = certify(heft(graph, machine=machine), flavor="heft")
        assert cert.ok, cert.render()
        assert cert.greedy_checked

    @pytest.mark.parametrize("machine", HETERO_MACHINES)
    def test_delayed_task_mutant_rejected(self, machine):
        graph = layered_random(4, 5, rng=make_rng(11))
        s = heft(graph, machine=machine)
        # Delay the last task on the busiest processor.  The mutant stays
        # structurally valid (no overlap, finish = start + duration) but
        # the placement is no longer the earliest HEFT finish.
        proc = s.proc_of(
            max(range(graph.num_tasks), key=lambda t: s.finish_of(t))
        )
        victim = s.proc_tasks(proc)[-1]
        cert = certify(_replay_with_delay(s, victim, 5.0), flavor="heft")
        assert not cert.ok
        assert "F003" in cert.codes()

    def test_mutant_rejected_on_homogeneous_machine(self):
        graph = lu(6, make_rng(5), ccr=1.0)
        s = heft(graph, machine=MachineModel(4))
        victim = s.proc_tasks(s.proc_of(graph.exit_tasks[0]))[-1]
        cert = certify(_replay_with_delay(s, victim, 3.0), flavor="heft")
        assert not cert.ok
        assert "F003" in cert.codes()

    def test_structural_violations_gate_f003(self):
        # F003 is meaningless on a structurally broken schedule; the
        # certifier must report the structural code alone.
        graph = lu(6, make_rng(6), ccr=1.0)
        s = heft(graph, machine=MachineModel(3))
        t = s.proc_tasks(0)[0]
        s._finish[t] += 0.5  # finish no longer start + duration
        cert = certify(s, flavor="heft")
        assert not cert.ok
        assert "F003" not in cert.codes()

    def test_flb_flavor_unaffected(self):
        # The greedy FLB certificate still runs through the old path.
        graph = lu(6, make_rng(7), ccr=1.0)
        from repro.core.flb import flb

        cert = certify(flb(graph, num_procs=4), flavor="flb")
        assert cert.ok, cert.render()


class TestServeMachine:
    def _post(self, base, path, payload):
        req = urllib.request.Request(
            base + path, data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"}, method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    def _graph_doc(self):
        return json.loads(to_json(lu(6, make_rng(0), ccr=1.0)))

    def test_machine_round_trip_and_cache_split(self):
        doc = self._graph_doc()
        slow = {"num_procs": 3, "speeds": [2.0, 1.0, 0.5]}
        with BackgroundServer(ServeConfig(port=0)) as srv:
            base = f"http://{srv.host}:{srv.port}"
            _, reg = self._post(base, "/v1/graphs", {"graph": doc})
            fp = reg["fingerprint"]

            status, res = self._post(
                base, "/v1/schedule",
                {"fingerprint": fp, "machine": slow, "algo": "heft"},
            )
            assert status == 200 and res["ok"] and not res["cached"]
            assert res["procs"] == 3
            assert res["machine"]["speeds"] == slow["speeds"]

            # Identical machine → cache hit.
            status, hit = self._post(
                base, "/v1/schedule",
                {"fingerprint": fp, "machine": slow, "algo": "heft"},
            )
            assert status == 200 and hit["cached"]
            assert hit["makespan"] == res["makespan"]

            # Same num_procs, different speeds → distinct entry (the
            # regression this plane exists to prevent).
            status, other = self._post(
                base, "/v1/schedule",
                {"fingerprint": fp, "algo": "heft",
                 "machine": {"num_procs": 3, "speeds": [1.0, 1.0, 8.0]}},
            )
            assert status == 200 and not other["cached"]

            # Plain procs request equals the homogeneous machine request.
            status, by_procs = self._post(
                base, "/v1/schedule", {"fingerprint": fp, "procs": 3},
            )
            assert status == 200 and not by_procs["cached"]
            status, by_machine = self._post(
                base, "/v1/schedule",
                {"fingerprint": fp, "machine": {"num_procs": 3}},
            )
            assert status == 200 and by_machine["cached"]
            assert by_machine["makespan"] == by_procs["makespan"]

    def test_machine_validation_errors(self):
        doc = self._graph_doc()
        with BackgroundServer(ServeConfig(port=0)) as srv:
            base = f"http://{srv.host}:{srv.port}"
            _, reg = self._post(base, "/v1/graphs", {"graph": doc})
            fp = reg["fingerprint"]

            status, err = self._post(
                base, "/v1/schedule",
                {"fingerprint": fp, "machine": {"num_procs": 2, "bogus": 1}},
            )
            assert status == 400 and "machine" in err["error"]

            status, err = self._post(
                base, "/v1/schedule",
                {"fingerprint": fp, "machine": [2]},
            )
            assert status == 400

            status, err = self._post(
                base, "/v1/schedule",
                {"fingerprint": fp, "procs": 4,
                 "machine": {"num_procs": 3}},
            )
            assert status == 400 and "conflicts" in err["error"]

    def test_config_default_machine(self):
        doc = self._graph_doc()
        machine = MachineModel(2, speeds=(1.0, 2.0))
        with BackgroundServer(ServeConfig(port=0, machine=machine)) as srv:
            base = f"http://{srv.host}:{srv.port}"
            _, reg = self._post(base, "/v1/graphs", {"graph": doc})
            status, res = self._post(
                base, "/v1/schedule",
                {"fingerprint": reg["fingerprint"], "algo": "heft"},
            )
            assert status == 200 and res["ok"]
            assert res["procs"] == 2
            assert res["machine"] == machine.to_dict()
