"""MCP-specific tests: ALAP priorities, tie-breaking variants, placement."""

import pytest

from repro.exceptions import SchedulerError
from repro.graph import TaskGraph, alap_times
from repro.schedulers import mcp, mcp_priority_order
from repro.util.rng import make_rng
from repro.workloads import erdos_dag, lu, paper_example


class TestPriorityOrder:
    def test_order_is_ascending_alap(self):
        g = paper_example()
        alap = alap_times(g)
        order = mcp_priority_order(g)
        values = [alap[t] for t in order]
        assert values == sorted(values)

    def test_order_is_topological(self):
        g = erdos_dag(30, 0.2, make_rng(0), ccr=1.0)
        pos = {t: i for i, t in enumerate(mcp_priority_order(g))}
        for src, dst, _ in g.edges():
            assert pos[src] < pos[dst]

    def test_paper_example_order_starts_with_critical_path(self):
        # ALAP: t0=0 < t3=3 < t1=4 < t5=4? -- check the actual prefix.
        g = paper_example()
        order = mcp_priority_order(g)
        assert order[0] == 0
        assert order[1] == 3  # ALAP(t3) = 15 - 12 = 3

    def test_lex_tie_breaking_deterministic(self):
        g = erdos_dag(20, 0.2, make_rng(1), ccr=1.0)
        assert mcp_priority_order(g, tie="lex") == mcp_priority_order(g, tie="lex")

    def test_random_tie_breaking_seed_dependent(self):
        # A fork of identical children has fully tied ALAPs.
        g = TaskGraph()
        root = g.add_task(1.0)
        for _ in range(8):
            c = g.add_task(1.0)
            g.add_edge(root, c, 1.0)
        g.freeze()
        orders = {tuple(mcp_priority_order(g, seed=s)) for s in range(6)}
        assert len(orders) > 1  # different seeds shuffle the tie
        assert all(o[0] == root for o in orders)

    def test_unknown_tie_rule(self):
        with pytest.raises(SchedulerError):
            mcp_priority_order(paper_example(), tie="bogus")


class TestMcpScheduling:
    def test_paper_example_valid(self):
        s = mcp(paper_example(), 2)
        assert s.violations() == []
        assert s.makespan <= 16.0  # comparable to FLB's 14

    def test_lex_variant_valid(self):
        s = mcp(paper_example(), 2, tie="lex")
        assert s.violations() == []

    def test_seed_changes_only_ties(self):
        g = lu(8, make_rng(2), ccr=1.0)
        # Continuous random weights: ALAP ties have probability zero, so
        # every seed yields the same schedule.
        s1 = mcp(g, 3, seed=0)
        s2 = mcp(g, 3, seed=99)
        assert s1.assignment() == s2.assignment()

    def test_each_task_on_min_est_processor(self):
        from repro.schedulers.base import est_on
        from repro.machine import MachineModel
        from repro.schedule import Schedule

        g = lu(6, make_rng(3), ccr=2.0)
        machine = MachineModel(3)
        final = mcp(g, machine=machine, seed=0)
        replay = Schedule(g, machine)
        for task in mcp_priority_order(g, seed=0):
            best = min(est_on(replay, task, p) for p in machine.procs)
            assert final.start_of(task) == pytest.approx(best)
            replay.place(task, final.proc_of(task), final.start_of(task))
