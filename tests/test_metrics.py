"""Tests for schedule metrics."""

import math

import pytest

from repro.core import flb
from repro.graph import TaskGraph
from repro.machine import MachineModel
from repro.metrics import (
    comm_stats,
    efficiency,
    load_imbalance,
    normalized_schedule_length,
    speedup,
    summarize,
    time_scheduler,
    utilization,
)
from repro.schedule import Schedule
from repro.schedulers import mcp
from repro.util.rng import make_rng
from repro.workloads import independent_tasks, lu, paper_example, two_chains


@pytest.fixture()
def paper_schedule():
    return flb(paper_example(), 2)


def _zero_makespan_schedule(procs=2):
    """A degenerate schedule: nothing placed yet, so the makespan is 0."""
    g = TaskGraph()
    g.add_task(1.0, name="t0")
    g.freeze()
    return Schedule(g, MachineModel(procs))


class TestSpeedupEfficiency:
    def test_paper_example(self, paper_schedule):
        # Total comp = 19, makespan = 14.
        assert speedup(paper_schedule) == pytest.approx(19.0 / 14.0)
        assert efficiency(paper_schedule) == pytest.approx(19.0 / 28.0)

    def test_single_proc_speedup_one(self):
        s = flb(paper_example(), 1)
        assert speedup(s) == pytest.approx(1.0)
        assert efficiency(s) == pytest.approx(1.0)

    def test_perfect_parallelism(self):
        s = flb(independent_tasks(8), 4)
        assert speedup(s) == pytest.approx(4.0)
        assert efficiency(s) == pytest.approx(1.0)

    def test_zero_makespan_raises_value_error(self):
        # A degenerate schedule must raise a ValueError that names the
        # schedule, not a bare ZeroDivisionError from the division.
        s = _zero_makespan_schedule()
        with pytest.raises(ValueError, match="makespan"):
            speedup(s)
        with pytest.raises(ValueError, match="makespan"):
            efficiency(s)


class TestNsl:
    def test_identity(self, paper_schedule):
        assert normalized_schedule_length(paper_schedule, paper_schedule.makespan) == 1.0

    def test_against_mcp(self):
        g = lu(10, make_rng(0), ccr=1.0)
        ref = mcp(g, 4).makespan
        nsl = normalized_schedule_length(flb(g, 4), ref)
        assert 0.3 < nsl < 3.0

    def test_bad_reference(self, paper_schedule):
        with pytest.raises(ValueError):
            normalized_schedule_length(paper_schedule, 0.0)


class TestUtilization:
    def test_paper_example(self, paper_schedule):
        util = utilization(paper_schedule)
        assert len(util) == 2
        # p0 runs t0,t3,t2,t5,t7 = 12 comp over 14; p1 runs t1,t4,t6 = 7.
        assert util[0] == pytest.approx(12.0 / 14.0)
        assert util[1] == pytest.approx(7.0 / 14.0)

    def test_bounds(self):
        g = lu(10, make_rng(1), ccr=2.0)
        for u in utilization(flb(g, 4)):
            assert 0.0 <= u <= 1.0 + 1e-9

    def test_load_imbalance(self):
        s = flb(independent_tasks(8), 4)
        assert load_imbalance(s) == pytest.approx(1.0)
        s2 = flb(two_chains(), 4)
        assert load_imbalance(s2) >= 1.0

    def test_load_imbalance_degenerate_is_inf(self):
        # Zero total busy time: imbalance is undefined, reported as inf
        # (the docstring always promised this; the code used to return 0.0,
        # which reads as "perfectly balanced").
        assert math.isinf(load_imbalance(_zero_makespan_schedule()))


class TestCommStats:
    def test_paper_example(self, paper_schedule):
        stats = comm_stats(paper_schedule)
        assert stats.total_messages == 10
        # Crossing edges in the Table 1 schedule: t0->t1, t1->t5, t2->t6,
        # t4->t7, t6->t7 (p0<->p1).
        assert stats.remote_messages == 5
        assert stats.remote_volume == pytest.approx(1 + 1 + 1 + 1 + 2)
        assert stats.local_volume == pytest.approx(17 - 6)  # total volume 17
        assert stats.remote_fraction == pytest.approx(0.5)

    def test_single_proc_all_local(self):
        g = paper_example()
        s = flb(g, 1)
        stats = comm_stats(s)
        assert stats.remote_messages == 0
        assert stats.local_volume == pytest.approx(g.total_comm())

    def test_no_edges(self):
        s = flb(independent_tasks(4), 2)
        stats = comm_stats(s)
        assert stats.total_messages == 0
        assert stats.remote_fraction == 0.0


class TestSummarize:
    def test_keys_and_consistency(self, paper_schedule):
        d = summarize(paper_schedule)
        assert d["makespan"] == 14.0
        assert d["speedup"] == pytest.approx(19.0 / 14.0)
        assert d["procs_used"] == 2.0
        assert set(d) >= {
            "makespan",
            "speedup",
            "efficiency",
            "load_imbalance",
            "remote_messages",
        }


class TestTimeScheduler:
    def test_returns_positive_seconds(self):
        g = lu(8, make_rng(2), ccr=1.0)
        t = time_scheduler(flb, g, 4, repeats=3)
        assert t > 0.0
        assert t < 5.0  # tiny graph: must be fast

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            time_scheduler(flb, paper_example(), 2, repeats=0)
