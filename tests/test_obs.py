"""Observability plane unit tests: instruments, spans, Prometheus
exposition, JSONL trace round-trips, and the report renderer."""

import json
import math

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    JOB_EVENT,
    KernelMetricsObserver,
    MetricsRegistry,
    parse_prometheus,
    read_trace,
    render_prometheus,
    render_report,
    span,
    summarize_trace,
    validate_event,
)


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total")
        c.inc()
        c.inc(2.5)
        assert reg.value("jobs_total") == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_same_name_and_labels_is_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs_total", status="ok", algo="flb")
        b = reg.counter("jobs_total", algo="flb", status="ok")  # order-free
        assert a is b
        a.inc()
        assert reg.value("jobs_total", status="ok", algo="flb") == 1.0

    def test_different_labels_are_different_instruments(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", status="ok").inc(3)
        reg.counter("jobs_total", status="timeout").inc(1)
        assert reg.value("jobs_total", status="ok") == 3.0
        assert reg.value("jobs_total", status="timeout") == 1.0
        assert reg.total("jobs_total") == 4.0

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("bytes")
        g.set(100)
        g.inc(5)
        g.dec(2)
        assert reg.value("bytes") == 103.0

    def test_value_never_creates(self):
        reg = MetricsRegistry()
        assert reg.value("never_touched_total") == 0.0
        assert list(reg.counters()) == []

    def test_histogram_bucket_placement(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.01, 0.05, 0.5, 2.0):
            h.observe(v)
        # inclusive upper bounds: 0.01 lands in the first bucket
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert math.isclose(h.sum, 2.565)
        assert math.isclose(h.mean, 0.513)

    def test_histogram_rejects_bad_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad_seconds", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            reg.histogram("empty_seconds", buckets=())

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestSpans:
    def test_span_records_event_and_histogram(self):
        reg = MetricsRegistry()
        with reg.span("sched.kernel", algo="flb") as s:
            s.annotate(makespan=12.5)
        (event,) = reg.events
        assert event["name"] == "sched.kernel"
        assert event["attrs"] == {"algo": "flb", "makespan": 12.5}
        assert event["dur"] >= 0.0
        hist = reg.histogram("sched_kernel_seconds")
        assert hist.count == 1

    def test_module_level_span_noop_without_registry(self):
        with span("anything") as s:
            pass
        assert s.duration >= 0.0  # measured, but recorded nowhere

    def test_module_level_span_with_registry(self):
        reg = MetricsRegistry()
        with span("x.y", metrics=reg):
            pass
        assert reg.events[0]["name"] == "x.y"


class TestPrometheus:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", status="ok").inc(3)
        reg.counter("jobs_total", status="time\"out\\").inc(1)
        reg.gauge("bytes").set(19161)
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        return reg

    def test_renders_and_parses(self):
        text = render_prometheus(self._populated())
        samples = parse_prometheus(text)
        assert samples["repro_bytes"] == 19161.0
        assert samples["repro_lat_seconds_count"] == 2.0
        assert math.isclose(samples["repro_lat_seconds_sum"], 5.05)

    def test_buckets_are_cumulative_and_end_in_inf(self):
        samples = parse_prometheus(render_prometheus(self._populated()))
        buckets = {
            key: value for key, value in samples.items()
            if key.startswith("repro_lat_seconds_bucket")
        }
        assert buckets == {
            'repro_lat_seconds_bucket{le="0.1"}': 1.0,
            'repro_lat_seconds_bucket{le="1"}': 1.0,
            'repro_lat_seconds_bucket{le="+Inf"}': 2.0,
        }

    def test_label_escaping_round_trips(self):
        samples = parse_prometheus(render_prometheus(self._populated()))
        assert samples['repro_jobs_total{status="ok"}'] == 3.0
        assert samples['repro_jobs_total{status="time\\"out\\\\"}'] == 1.0

    def test_type_headers_present_once_per_metric(self):
        text = render_prometheus(self._populated())
        type_lines = [l for l in text.splitlines() if l.startswith("# TYPE")]
        assert "# TYPE repro_jobs_total counter" in type_lines
        assert "# TYPE repro_bytes gauge" in type_lines
        assert "# TYPE repro_lat_seconds histogram" in type_lines
        assert len(type_lines) == len(set(type_lines))

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not prometheus\n")
        with pytest.raises(ValueError):
            parse_prometheus("repro_x{unterminated=\"v} 1\n")


class TestTrace:
    def test_write_read_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.event("batch.run", 0.5, jobs=8)
        with reg.span("sched.kernel", algo="flb"):
            pass
        path = tmp_path / "trace.jsonl"
        reg.write_trace(str(path))
        events = read_trace(str(path))
        assert [e["name"] for e in events] == ["batch.run", "sched.kernel"]
        assert events[0]["attrs"]["jobs"] == 8

    def test_validate_event_rejects_malformed(self):
        good = {"name": "x", "ts": 1.0, "dur": 0.0, "attrs": {}}
        validate_event(good)
        for bad in (
            {},
            {"name": 3, "ts": 1.0, "dur": 0.0, "attrs": {}},
            {"name": "x", "ts": "then", "dur": 0.0, "attrs": {}},
            {"name": "x", "ts": 1.0, "dur": True, "attrs": {}},
            {"name": "x", "ts": 1.0, "dur": 0.0, "attrs": []},
        ):
            with pytest.raises(ValueError):
                validate_event(bad)

    def test_read_trace_rejects_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "x", "ts": 1.0, "dur": 0.0, "attrs": {}}\nnot json\n')
        with pytest.raises(ValueError):
            read_trace(str(path))


def _job_event(tag, ok=True, wall=0.1, cached=False, algo="flb",
               error_kind=None, phases=None):
    return {
        "name": JOB_EVENT,
        "ts": 1700000000.0,
        "dur": wall,
        "attrs": {
            "tag": tag,
            "algo": algo,
            "procs": 4,
            "ok": ok,
            "error_kind": error_kind,
            "cached": cached,
            "attempts": 1,
            "wall": wall,
            "phases": phases or {"queue": wall / 2, "schedule": wall / 2},
        },
    }


class TestReport:
    def test_summarize_counts_and_phases(self):
        events = [
            _job_event("a", wall=0.1),
            _job_event("b", wall=0.3, algo="mcp"),
            _job_event("c", ok=False, error_kind="timeout", wall=0.2),
            _job_event("d", cached=True, wall=0.0,
                       phases={"queue": 0.0, "schedule": 0.0}),
            {"name": "batch.run", "ts": 1700000000.0, "dur": 0.6, "attrs": {}},
        ]
        summary = summarize_trace(events)
        assert summary["jobs"]["count"] == 4
        assert summary["jobs"]["ok"] == 3
        assert summary["jobs"]["failed"] == 1
        assert summary["jobs"]["cached"] == 1
        assert summary["failures"] == {"timeout": 1}
        assert {row["algo"] for row in summary["algos"]} == {"flb", "mcp"}
        phase_total = sum(row["seconds"] for row in summary["phases"])
        assert math.isclose(phase_total, 0.6, rel_tol=1e-9)

    def test_render_report_mentions_the_essentials(self):
        events = [_job_event("a"), _job_event("b", ok=False, error_kind="timeout")]
        text = render_report(events)
        assert "jobs: 2" in text
        assert "queue" in text and "schedule" in text
        assert "timeout" in text

    def test_empty_trace_renders(self):
        assert "no batch.job events" in render_report([])


class TestKernelObserver:
    def test_counts_iterations_and_heap_ops(self):
        from repro.core import flb
        from repro.util.rng import make_rng
        from repro.workloads import lu

        g = lu(6, make_rng(0), ccr=1.0)
        reg = MetricsRegistry()
        obs = KernelMetricsObserver(reg)
        flb(g, 4, observer=obs)
        assert reg.total("flb_kernel_iterations_total") == g.num_tasks
        assert reg.total("flb_kernel_heap_ops_total") > 0
        assert reg.total("flb_kernel_choices_total") == g.num_tasks
        assert reg.histogram("flb_kernel_ready_tasks").count == g.num_tasks
        # a second run on the same observer must not go negative
        flb(g, 4, observer=obs)
        assert reg.total("flb_kernel_iterations_total") == 2 * g.num_tasks


class TestRegistryExport:
    def test_snapshot_format(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        reg.counter("b_total", k="v").inc(2)
        reg.gauge("g").set(7)
        assert reg.snapshot() == {"a_total": 1.0, "b_total{k=v}": 2.0, "g": 7.0}

    def test_write_prometheus(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        path = tmp_path / "m.prom"
        reg.write_prometheus(str(path))
        assert parse_prometheus(path.read_text()) == {"repro_a_total": 1.0}

    def test_trace_is_valid_jsonl(self, tmp_path):
        reg = MetricsRegistry()
        reg.event("x", 0.1, nested={"a": [1, 2]})
        path = tmp_path / "t.jsonl"
        reg.write_trace(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["attrs"]["nested"] == {"a": [1, 2]}
