"""Metrics correctness for the batch plane: the counters a registry
collects must reconcile exactly with the ``BatchResult`` taxonomy the
caller already gets, per-job phase breakdowns must sum to the job's wall
time, and the worker-pool/caches must report their lifecycle events."""

import time

import pytest

from repro.api import SchedulingOptions
from repro.batch import (
    SCHEDULER_ERROR,
    TIMEOUT,
    BatchJob,
    BatchScheduler,
    schedule_many,
)
from repro.obs import JOB_EVENT, MetricsRegistry, parse_prometheus
from repro.schedulers import SCHEDULERS
from repro.util.rng import make_rng
from repro.workloads import lu


# Module-level so forked worker processes resolve them after a
# monkeypatched SCHEDULERS entry is inherited through fork.
def _hung_scheduler(graph, num_procs=None, machine=None):
    time.sleep(60.0)
    return SCHEDULERS["flb"](graph, num_procs, machine=machine)


def _broken_scheduler(graph, num_procs=None, machine=None):
    raise RuntimeError("kaboom")


@pytest.fixture
def graph():
    return lu(6, make_rng(0), ccr=1.0)


def _job_events(reg):
    return [e for e in reg.events if e["name"] == JOB_EVENT]


class TestCountersReconcile:
    def test_ok_jobs_inline(self, graph):
        reg = MetricsRegistry()
        jobs = [BatchJob(graph=graph, procs=p, algo=a, tag=f"{a}{p}")
                for p in (2, 4) for a in ("flb", "mcp")]
        results = schedule_many(jobs, metrics=reg)
        assert all(r.ok for r in results)
        assert reg.value("batch_jobs_total", status="ok") == len(jobs)
        assert reg.value("batch_runs_total") == 1
        assert reg.histogram("batch_exec_seconds").count == len(jobs)

    def test_mixed_taxonomy_matches_results(self, graph, monkeypatch):
        monkeypatch.setitem(SCHEDULERS, "hung", _hung_scheduler)
        monkeypatch.setitem(SCHEDULERS, "broken", _broken_scheduler)
        reg = MetricsRegistry()
        jobs = [
            BatchJob(graph=graph, procs=2, tag="good"),
            BatchJob(graph=graph, procs=2, algo="hung", tag="slow"),
            BatchJob(graph=graph, procs=2, algo="broken", tag="bad"),
        ]
        results = schedule_many(jobs, workers=2, grace=0.5, metrics=reg,
                                options=SchedulingOptions(timeout=0.5))
        by_kind = {}
        for res in results:
            key = "ok" if res.ok else res.error_kind
            by_kind[key] = by_kind.get(key, 0) + 1
        assert by_kind == {"ok": 1, TIMEOUT: 1, SCHEDULER_ERROR: 1}
        for kind, count in by_kind.items():
            assert reg.value("batch_jobs_total", status=kind) == count
        assert reg.total("batch_jobs_total") == len(jobs)

    def test_cached_jobs_counted(self, graph):
        reg = MetricsRegistry()
        jobs = [BatchJob(graph=graph, procs=2, tag=str(i)) for i in range(3)]
        with BatchScheduler(workers=1, metrics=reg) as bs:
            bs.run(jobs)
        # identical (graph, procs, algo): one computed, two coalesced/cached
        assert reg.total("batch_jobs_total") == 3
        assert reg.total("batch_jobs_cached_total") == 2

    def test_dispatch_mode_counters(self, graph):
        reg = MetricsRegistry()
        with BatchScheduler(workers=2, metrics=reg) as bs:
            key = bs.register(graph)
            bs.run([BatchJob(graph=None, graph_key=key, procs=p)
                    for p in (2, 3)])
        assert reg.value("batch_dispatch_total", mode="keyed") == 2

    def test_dispatch_inline_counted(self, graph):
        reg = MetricsRegistry()
        schedule_many([BatchJob(graph=graph, procs=2)], workers=1, metrics=reg)
        assert reg.value("batch_dispatch_total", mode="inline") == 1


class TestPhases:
    def test_phases_sum_to_wall_inline(self, graph):
        reg = MetricsRegistry()
        schedule_many([BatchJob(graph=graph, procs=2)], metrics=reg)
        (event,) = _job_events(reg)
        attrs = event["attrs"]
        assert abs(sum(attrs["phases"].values()) - attrs["wall"]) < 1e-6

    def test_phases_sum_to_wall_pool(self, graph):
        reg = MetricsRegistry()
        jobs = [BatchJob(graph=graph, procs=p, tag=str(p)) for p in (2, 3, 4)]
        results = schedule_many(jobs, workers=2, metrics=reg)
        assert all(r.ok for r in results)
        events = _job_events(reg)
        assert len(events) == len(jobs)
        for event in events:
            attrs = event["attrs"]
            assert abs(sum(attrs["phases"].values()) - attrs["wall"]) < 1e-6
            assert attrs["phases"]["schedule"] > 0

    def test_certify_phase_present_when_certifying(self, graph):
        reg = MetricsRegistry()
        schedule_many([BatchJob(graph=graph, procs=2)], metrics=reg,
                      options=SchedulingOptions(certify=True))
        (event,) = _job_events(reg)
        assert event["attrs"]["phases"]["certify"] > 0

    def test_result_carries_phases_only_when_measured(self, graph):
        (bare,) = schedule_many([BatchJob(graph=graph, procs=2)])
        assert bare.phases is None
        (measured,) = schedule_many([BatchJob(graph=graph, procs=2)],
                                    metrics=MetricsRegistry())
        assert measured.phases and "schedule" in measured.phases


class TestWorkerPoolMetrics:
    def test_spawn_and_outcome_counters(self, graph):
        reg = MetricsRegistry()
        jobs = [BatchJob(graph=graph, procs=p, tag=str(p)) for p in (2, 3)]
        schedule_many(jobs, workers=2, metrics=reg)
        assert reg.value("workerpool_spawned_total") >= 1
        assert reg.value("workerpool_outcomes_total", kind="completed") == 2
        assert reg.histogram("workerpool_exec_seconds").count == 2

    def test_sigkill_counted_on_timeout(self, graph, monkeypatch):
        monkeypatch.setitem(SCHEDULERS, "hung", _hung_scheduler)
        reg = MetricsRegistry()
        results = schedule_many(
            [BatchJob(graph=graph, procs=2, algo="hung", tag="hung"),
             BatchJob(graph=graph, procs=2, tag="good")],
            workers=2, grace=0.5, metrics=reg,
            options=SchedulingOptions(timeout=0.4),
        )
        kinds = {r.tag: r.error_kind for r in results}
        assert kinds == {"hung": TIMEOUT, "good": None}
        assert reg.value("workerpool_sigkills_total") == 1
        assert reg.value("workerpool_outcomes_total", kind="timeout") == 1


class TestStoreAndCacheGauges:
    def test_gauges_exported(self, graph):
        reg = MetricsRegistry()
        with BatchScheduler(workers=1, metrics=reg) as bs:
            key = bs.register(graph)
            bs.run([BatchJob(graph=None, graph_key=key, procs=2)] * 2)
        assert reg.value("graphstore_graphs") == 1
        assert reg.value("graphstore_bytes") > 0
        assert reg.value("resultcache_hits") + reg.total(
            "batch_jobs_cached_total"
        ) >= 1

    def test_prometheus_export_is_valid(self, graph):
        reg = MetricsRegistry()
        schedule_many([BatchJob(graph=graph, procs=2)], workers=1, metrics=reg)
        samples = parse_prometheus(reg.to_prometheus())
        assert samples['repro_batch_jobs_total{status="ok"}'] == 1.0
