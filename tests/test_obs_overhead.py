"""The observability plane's performance contract (``perfgate``): metrics
collection, when enabled, costs at most ~5% of batch throughput, and the
disabled path does zero instrument work.

Run via ``tools/perf_smoke.sh`` (the gate is excluded from the default
tier-1 selection by the ``perfgate`` marker).
"""

import os
import time

import pytest

from repro.api import SchedulingOptions
from repro.batch import BatchJob, schedule_many
from repro.obs import MetricsRegistry
from repro.util.rng import make_rng
from repro.workloads import lu, lu_size_for_tasks

#: The contract from docs/observability.md: enabled-metrics throughput is
#: within 5% of disabled, plus a small absolute epsilon so sub-millisecond
#: jitter on tiny runs cannot flake the gate.
OVERHEAD_BUDGET = 1.05
ABS_EPSILON_S = 0.010


def _bench_tasks(default=300):
    try:
        return int(os.environ.get("REPRO_BENCH_TASKS", default))
    except ValueError:
        return default


def _jobs():
    g = lu(lu_size_for_tasks(_bench_tasks()), make_rng(0), ccr=1.0)
    return [BatchJob(graph=g, procs=p, algo=a, tag=f"{p}/{a}")
            for p in (2, 4, 8, 16) for a in ("flb", "fcp", "mcp")]


@pytest.mark.perfgate
def test_enabled_metrics_within_budget_inline():
    """Interleaved min-of-N: metrics-on inline scheduling stays within the
    5% budget of metrics-off on the same jobs."""
    jobs = _jobs()
    repeats = 5
    best_off = best_on = float("inf")
    # Interleave the arms so drift (thermal, page cache) hits both equally.
    for _ in range(repeats):
        t0 = time.perf_counter()
        off = schedule_many(jobs, workers=1)
        best_off = min(best_off, time.perf_counter() - t0)

        reg = MetricsRegistry()
        t0 = time.perf_counter()
        on = schedule_many(jobs, workers=1, metrics=reg)
        best_on = min(best_on, time.perf_counter() - t0)
    assert all(r.ok for r in off) and all(r.ok for r in on)
    assert [r.makespan for r in off] == [r.makespan for r in on]
    assert best_on <= best_off * OVERHEAD_BUDGET + ABS_EPSILON_S, (
        f"metrics overhead {best_on / best_off:.3f}x exceeds "
        f"{OVERHEAD_BUDGET:.2f}x budget ({best_on:.4f}s vs {best_off:.4f}s)"
    )


@pytest.mark.perfgate
def test_disabled_path_records_nothing():
    """With no registry passed, the batch plane must not collect phases or
    events anywhere — the guard is ``metrics is None`` at every site."""
    jobs = _jobs()[:4]
    results = schedule_many(jobs, workers=1)
    assert all(r.phases is None for r in results)


@pytest.mark.perfgate
def test_metrics_collection_is_complete_under_gate_load():
    """The run measured by the overhead gate still yields a full registry:
    every job counted, every trace event has phases summing to its wall."""
    jobs = _jobs()
    reg = MetricsRegistry()
    results = schedule_many(jobs, workers=1,
                            options=SchedulingOptions(metrics=reg))
    assert reg.total("batch_jobs_total") == len(jobs)
    assert all(r.ok for r in results)
    events = [e for e in reg.events if e["name"] == "batch.job"]
    assert len(events) == len(jobs)
    for event in events:
        attrs = event["attrs"]
        assert abs(sum(attrs["phases"].values()) - attrs["wall"]) < 1e-6
