"""Executable checks of the paper's stated claims and definitions beyond
Theorem 3 (which has its own suite in test_flb_oracle.py)."""

from typing import ClassVar

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FlbIteration, flb
from repro.graph import width
from repro.metrics import time_scheduler
from repro.schedulers import SCHEDULERS
from repro.util.rng import make_rng
from repro.workloads import erdos_dag, layered_random, lu, paper_example, stencil


class ReadyCountObserver:
    """Records the peak ready-set size during an FLB run."""

    def __init__(self):
        self.peak = 0

    def on_iteration(self, snapshot: FlbIteration) -> None:
        self.peak = max(self.peak, snapshot.lists.num_ready)


class TestSection2Claims:
    """'Note that at any given time the number of ready tasks never
    exceeds W.'"""

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(2, 30),
        p=st.floats(0.0, 0.5),
        procs=st.integers(1, 6),
        seed=st.integers(0, 5000),
    )
    def test_ready_set_bounded_by_width(self, n, p, procs, seed):
        g = erdos_dag(n, p, make_rng(seed), ccr=1.0)
        observer = ReadyCountObserver()
        flb(g, procs, observer=observer)
        assert observer.peak <= width(g)

    def test_ready_set_bound_on_workloads(self):
        for g in (lu(8, make_rng(0)), stencil(6, 5, make_rng(1))):
            observer = ReadyCountObserver()
            flb(g, 4, observer=observer)
            assert observer.peak <= width(g)


class TestSection6Claims:
    """Cost claims from the performance section, checked as orderings on
    this machine (absolute 1999 numbers are not reproducible)."""

    def test_etf_is_the_most_costly(self):
        g = stencil(20, 20, make_rng(2), ccr=1.0)  # V=400
        times = {
            algo: time_scheduler(SCHEDULERS[algo], g, 16, repeats=1)
            for algo in ("etf", "mcp", "dsc-llb", "fcp", "flb")
        }
        assert max(times, key=times.get) == "etf"

    def test_dsc_llb_cost_nearly_independent_of_p(self):
        g = stencil(20, 20, make_rng(3), ccr=1.0)
        t2 = time_scheduler(SCHEDULERS["dsc-llb"], g, 2, repeats=3)
        t32 = time_scheduler(SCHEDULERS["dsc-llb"], g, 32, repeats=3)
        assert t32 < 3.0 * t2

    def test_flb_cost_nearly_independent_of_p(self):
        g = stencil(25, 40, make_rng(4), ccr=1.0)  # V=1000
        t2 = time_scheduler(SCHEDULERS["flb"], g, 2, repeats=3)
        t32 = time_scheduler(SCHEDULERS["flb"], g, 32, repeats=3)
        assert t32 < 2.5 * t2

    def test_flb_consistently_outperforms_dsc_llb(self):
        """'FLB consistently outperforms multi-step algorithms like
        DSC-LLB' — on suite averages (per-instance exceptions exist and the
        paper's own Fig. 4 shows a few)."""
        wins = ties = losses = 0
        for seed in range(6):
            for ccr in (0.2, 5.0):
                g = stencil(15, 15, make_rng(seed), ccr=ccr)
                f = SCHEDULERS["flb"](g, 8).makespan
                d = SCHEDULERS["dsc-llb"](g, 8).makespan
                if f < d - 1e-9:
                    wins += 1
                elif d < f - 1e-9:
                    losses += 1
                else:
                    ties += 1
        assert wins + ties >= losses

    def test_flb_equivalent_to_etf_on_paper_example(self):
        assert (
            SCHEDULERS["flb"](paper_example(), 2).makespan
            == SCHEDULERS["etf"](paper_example(), 2).makespan
        )


class TestComplexityVisibleInvariants:
    def test_flb_scales_gently_in_width(self):
        """Doubling W at fixed V should only move cost by the log factor."""
        narrow = layered_random(100, 10, make_rng(5), ccr=1.0)  # V=1000, W=10
        wide = layered_random(10, 100, make_rng(5), ccr=1.0)  # V=1000, W=100
        t_narrow = time_scheduler(SCHEDULERS["flb"], narrow, 8, repeats=3)
        t_wide = time_scheduler(SCHEDULERS["flb"], wide, 8, repeats=3)
        assert t_wide < 5.0 * t_narrow

    def test_etf_scales_linearly_in_width(self):
        """ETF's W factor is real: 10x the width costs roughly 10x."""
        narrow = layered_random(50, 10, make_rng(6), ccr=1.0)  # V=500, W=10
        wide = layered_random(5, 100, make_rng(6), ccr=1.0)  # V=500, W=100
        t_narrow = time_scheduler(SCHEDULERS["etf"], narrow, 8, repeats=1)
        t_wide = time_scheduler(SCHEDULERS["etf"], wide, 8, repeats=1)
        assert t_wide > 3.0 * t_narrow


class TestFcpTwoProcessorLemma:
    """Ref [7]'s lemma, reused by FLB: a ready task starts earliest either
    on its enabling processor or on the processor that becomes idle the
    earliest.  Verified by replaying FCP's own choices against a full scan,
    and directly for arbitrary ready tasks on FLB partial schedules."""

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(2, 25),
        p=st.floats(0.0, 0.5),
        ccr=st.floats(0.1, 6.0),
        procs=st.integers(1, 6),
        seed=st.integers(0, 5000),
    )
    def test_lemma_on_flb_iterations(self, n, p, ccr, procs, seed):
        from repro.core.oracle import est_of

        class LemmaObserver:
            failures: ClassVar = []

            def on_iteration(self, snapshot):
                schedule = snapshot.schedule
                machine = schedule.machine
                idle = min(machine.procs, key=lambda q: (schedule.prt(q), q))
                for task in snapshot.lists.ready_tasks():
                    global_min = min(
                        est_of(schedule, task, q) for q in machine.procs
                    )
                    candidates = {idle}
                    # Enabling processor: derive from predecessors.
                    graph = schedule.graph
                    best = (-1.0, -1.0, -1)
                    ep = None
                    for pred in graph.preds(task):
                        ft = schedule.finish_of(pred)
                        arrival = ft + machine.remote_delay(graph.comm(pred, task))
                        if (arrival, ft, pred) > best:
                            best = (arrival, ft, pred)
                            ep = schedule.proc_of(pred)
                    if ep is not None:
                        candidates.add(ep)
                    two_proc_min = min(est_of(schedule, task, q) for q in candidates)
                    if abs(two_proc_min - global_min) > 1e-9:
                        self.failures.append((task, two_proc_min, global_min))

        from repro.core import flb
        from repro.util.rng import make_rng
        from repro.workloads import erdos_dag

        g = erdos_dag(n, p, make_rng(seed), ccr=ccr)
        observer = LemmaObserver()
        flb(g, procs, observer=observer)
        assert observer.failures == []
