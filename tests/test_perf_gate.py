"""Throughput perf gate: threshold logic (deterministic) and a smoke
measurement (marked ``perfgate``; run via ``tools/perf_smoke.sh``)."""

import json

import pytest

from repro.bench.perfgate import measure_throughput, run_gate


def _current(tasks_per_s):
    return {"tasks_per_s": tasks_per_s, "total_tasks": 1000, "suite": {}}


class TestGateLogic:
    def test_first_run_bootstraps_baseline(self, tmp_path):
        path = tmp_path / "BENCH_sched.json"
        result = run_gate(current=_current(1000.0), baseline_path=path)
        assert result.ok
        assert result.threshold is None
        stored = json.loads(path.read_text())
        assert stored["baseline"]["tasks_per_s"] == 1000.0
        assert stored["current"]["tasks_per_s"] == 1000.0

    def test_within_tolerance_passes(self, tmp_path):
        path = tmp_path / "BENCH_sched.json"
        run_gate(current=_current(1000.0), baseline_path=path)
        result = run_gate(
            current=_current(810.0), baseline_path=path, tolerance=0.20
        )
        assert result.ok
        assert result.threshold == pytest.approx(800.0)

    def test_regression_fails(self, tmp_path):
        path = tmp_path / "BENCH_sched.json"
        run_gate(current=_current(1000.0), baseline_path=path)
        result = run_gate(
            current=_current(790.0), baseline_path=path, tolerance=0.20
        )
        assert not result.ok
        assert "REGRESSION" in result.message
        # The failed measurement is still recorded; the baseline is not.
        stored = json.loads(path.read_text())
        assert stored["baseline"]["tasks_per_s"] == 1000.0
        assert stored["current"]["tasks_per_s"] == 790.0
        assert stored["last_run"]["ok"] is False

    def test_improvement_does_not_move_baseline(self, tmp_path):
        path = tmp_path / "BENCH_sched.json"
        run_gate(current=_current(1000.0), baseline_path=path)
        result = run_gate(current=_current(5000.0), baseline_path=path)
        assert result.ok
        assert json.loads(path.read_text())["baseline"]["tasks_per_s"] == 1000.0

    def test_update_baseline(self, tmp_path):
        path = tmp_path / "BENCH_sched.json"
        run_gate(current=_current(1000.0), baseline_path=path)
        result = run_gate(
            current=_current(700.0), baseline_path=path, update_baseline=True
        )
        assert result.ok
        assert json.loads(path.read_text())["baseline"]["tasks_per_s"] == 700.0

    def test_no_write_leaves_file_alone(self, tmp_path):
        path = tmp_path / "BENCH_sched.json"
        run_gate(current=_current(1000.0), baseline_path=path)
        before = path.read_text()
        run_gate(current=_current(100.0), baseline_path=path, write=False)
        assert path.read_text() == before

    def test_bad_tolerance_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            run_gate(
                current=_current(1.0),
                baseline_path=tmp_path / "b.json",
                tolerance=1.5,
            )


class TestBaselineHistory:
    def test_bootstrap_starts_history(self, tmp_path):
        path = tmp_path / "BENCH_sched.json"
        run_gate(current=_current(1000.0), baseline_path=path)
        stored = json.loads(path.read_text())
        assert [h["tasks_per_s"] for h in stored["history"]] == [1000.0]
        assert all("recorded" in h for h in stored["history"])

    def test_rebaseline_appends_not_replaces(self, tmp_path):
        path = tmp_path / "BENCH_sched.json"
        run_gate(current=_current(1000.0), baseline_path=path)
        run_gate(current=_current(4000.0), baseline_path=path,
                 update_baseline=True)
        run_gate(current=_current(10000.0), baseline_path=path,
                 update_baseline=True)
        stored = json.loads(path.read_text())
        assert [h["tasks_per_s"] for h in stored["history"]] == [
            1000.0, 4000.0, 10000.0,
        ]
        # The gate judges against the latest entry.
        assert stored["baseline"]["tasks_per_s"] == 10000.0

    def test_plain_runs_do_not_grow_history(self, tmp_path):
        path = tmp_path / "BENCH_sched.json"
        run_gate(current=_current(1000.0), baseline_path=path)
        run_gate(current=_current(1100.0), baseline_path=path)
        run_gate(current=_current(900.0), baseline_path=path)
        stored = json.loads(path.read_text())
        assert len(stored["history"]) == 1

    def test_gate_floor_follows_latest_history_entry(self, tmp_path):
        path = tmp_path / "BENCH_sched.json"
        run_gate(current=_current(1000.0), baseline_path=path)
        run_gate(current=_current(4000.0), baseline_path=path,
                 update_baseline=True)
        # 3300 clears the old 1000-baseline but not the ratcheted 4000 one.
        result = run_gate(
            current=_current(3300.0), baseline_path=path, tolerance=0.10
        )
        assert not result.ok
        assert result.threshold == pytest.approx(3600.0)

    def test_pre_history_file_is_migrated(self, tmp_path):
        path = tmp_path / "BENCH_sched.json"
        path.write_text(json.dumps({
            "benchmark": "flb-scheduling-throughput",
            "baseline": _current(1000.0),
            "current": _current(1000.0),
        }))
        run_gate(current=_current(950.0), baseline_path=path)
        stored = json.loads(path.read_text())
        assert [h["tasks_per_s"] for h in stored["history"]] == [1000.0]
        assert stored["baseline"]["tasks_per_s"] == 1000.0

    def test_pre_history_rebaseline_keeps_old_entry(self, tmp_path):
        """Re-baselining a pre-history file must not discard its old floor."""
        path = tmp_path / "BENCH_sched.json"
        path.write_text(json.dumps({
            "benchmark": "flb-scheduling-throughput",
            "baseline": _current(1000.0),
            "current": _current(1000.0),
        }))
        run_gate(
            current=_current(5000.0), baseline_path=path, update_baseline=True
        )
        stored = json.loads(path.read_text())
        assert [h["tasks_per_s"] for h in stored["history"]] == [
            1000.0, 5000.0,
        ]
        assert stored["baseline"]["tasks_per_s"] == 5000.0


@pytest.mark.perfgate
def test_measure_throughput_smoke(tmp_path):
    """A real (small) measurement flows through the gate end to end."""
    current = measure_throughput(
        target_tasks=150, seeds=1, procs=(2, 8), repeats=1
    )
    assert current["tasks_per_s"] > 0
    assert current["speedup_vs_seed"] > 1.0  # fast path must actually be faster
    result = run_gate(current=current, baseline_path=tmp_path / "BENCH_sched.json")
    assert result.ok
