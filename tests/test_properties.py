"""Tests for static task-graph analysis (levels, critical path, width, CCR)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    TaskGraph,
    alap_times,
    bottom_levels,
    ccr,
    critical_path_length,
    critical_path_tasks,
    parallelism_profile,
    static_levels,
    top_levels,
    width,
    width_lower_bound,
)
from repro.util.rng import make_rng
from repro.workloads import (
    chain,
    erdos_dag,
    fft,
    independent_tasks,
    layered_random,
    paper_example,
)


class TestLevelsOnPaperExample:
    """Bottom levels on the Fig. 1 graph must match the values printed in
    the paper's Table 1 trace."""

    def test_bottom_levels_match_table1(self):
        bl = bottom_levels(paper_example())
        assert bl[7] == 2.0
        assert bl[6] == 6.0  # 2 + 2 + 2
        assert bl[5] == 8.0  # 3 + 3 + 2
        assert bl[4] == 6.0  # 3 + 1 + 2
        assert bl[3] == 12.0  # 3 + 1 + 8
        assert bl[2] == 9.0  # 2 + 1 + 6
        assert bl[1] == 11.0  # 2 + max(2+6, 1+8)
        assert bl[0] == 15.0  # 2 + max(1+11, 4+9, 1+12)

    def test_critical_path(self):
        g = paper_example()
        assert critical_path_length(g) == 15.0
        path = critical_path_tasks(g)
        assert path[0] == 0
        assert path[-1] == 7
        # Verify the returned path really is a path of length CP.
        total = 0.0
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b)
            total += g.comp(a) + g.comm(a, b)
        total += g.comp(path[-1])
        assert total == pytest.approx(15.0)

    def test_alap(self):
        al = alap_times(paper_example())
        assert al[0] == 0.0
        assert al[3] == 3.0
        assert al[7] == 13.0

    def test_top_levels(self):
        tl = top_levels(paper_example())
        assert tl[0] == 0.0
        assert tl[1] == 3.0  # 0 + 2 + 1
        assert tl[2] == 6.0  # 0 + 2 + 4
        assert tl[7] == 13.0  # via t3, t5: 3 + 3(+1) ... = TL(t5)+comp+comm

    def test_static_levels(self):
        sl = static_levels(paper_example())
        assert sl[7] == 2.0
        assert sl[5] == 5.0  # 3 + 2
        assert sl[0] == 10.0  # 2 + 3 + 3 + 2 via t3, t5, t7


class TestLevelsStructure:
    def test_single_task(self):
        g = TaskGraph()
        g.add_task(4.0)
        g.freeze()
        assert bottom_levels(g) == [4.0]
        assert top_levels(g) == [0.0]
        assert critical_path_length(g) == 4.0

    def test_chain_levels(self):
        g = chain(4)  # unit comp, ccr=1 -> comm=1
        bl = bottom_levels(g)
        assert bl == [7.0, 5.0, 3.0, 1.0]
        tl = top_levels(g)
        assert tl == [0.0, 2.0, 4.0, 6.0]

    def test_bl_tl_sum_bounded_by_cp(self):
        g = layered_random(6, 5, make_rng(1), ccr=2.0)
        bl = bottom_levels(g)
        tl = top_levels(g)
        cp = critical_path_length(g)
        for t in g.tasks():
            assert tl[t] + bl[t] <= cp + 1e-9

    def test_alap_nonnegative_and_monotone_along_edges(self):
        g = layered_random(5, 4, make_rng(2))
        al = alap_times(g)
        for t in g.tasks():
            assert al[t] >= -1e-9
        for src, dst, _ in g.edges():
            assert al[src] < al[dst] + 1e-9


class TestCcr:
    def test_no_edges(self):
        assert ccr(independent_tasks(5)) == 0.0

    def test_known_value(self):
        g = TaskGraph()
        a, b = g.add_task(2.0), g.add_task(4.0)  # mean comp 3
        g.add_edge(a, b, 6.0)  # mean comm 6
        g.freeze()
        assert ccr(g) == pytest.approx(2.0)

    @pytest.mark.parametrize("target", [0.2, 1.0, 5.0])
    def test_generators_hit_target_ccr(self, target):
        g = layered_random(5, 5, make_rng(3), ccr=target)
        assert ccr(g) == pytest.approx(target, rel=1e-9)


class TestWidth:
    def test_chain_width_one(self):
        assert width(chain(10)) == 1

    def test_independent_width_v(self):
        assert width(independent_tasks(13)) == 13

    def test_paper_example_width(self):
        # Antichain {t1, t2, t3} (children of t0) is maximum: t4..t6 descend
        # from distinct members of it, but {t2, t4, t5} is also size 3.
        assert width(paper_example()) == 3

    def test_fft_width_equals_points(self):
        assert width(fft(8)) == 8

    def test_diamond(self):
        g = TaskGraph()
        a, b, c, d = (g.add_task(1.0) for _ in range(4))
        g.add_edge(a, b)
        g.add_edge(a, c)
        g.add_edge(b, d)
        g.add_edge(c, d)
        g.freeze()
        assert width(g) == 2

    def test_lower_bound_is_lower_bound(self):
        for seed in range(5):
            g = erdos_dag(40, 0.1, make_rng(seed))
            assert width_lower_bound(g) <= width(g)

    def test_layered_width(self):
        # Dense consecutive layers: width = layer width.
        g = layered_random(4, 6, make_rng(0), edge_density=1.0)
        assert width(g) == 6


class TestParallelismProfile:
    def test_chain(self):
        assert parallelism_profile(chain(5)) == [1, 1, 1, 1, 1]

    def test_fft(self):
        assert parallelism_profile(fft(8)) == [8, 8, 8, 8]

    def test_sums_to_v(self):
        g = erdos_dag(30, 0.15, make_rng(9))
        assert sum(parallelism_profile(g)) == 30


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(2, 25),
    p=st.floats(0.0, 0.5),
    seed=st.integers(0, 1000),
)
def test_property_width_bounds(n, p, seed):
    """1 <= lower bound <= exact width <= V, and width 1 iff total order."""
    g = erdos_dag(n, p, make_rng(seed))
    lo = width_lower_bound(g)
    w = width(g)
    assert 1 <= lo <= w <= n


@settings(max_examples=50, deadline=None)
@given(n=st.integers(1, 30), p=st.floats(0.0, 0.6), seed=st.integers(0, 1000))
def test_property_bottom_level_dominates_succs(n, p, seed):
    """BL(t) >= comp(t) + comm(t,s) + BL(s) for every edge, with equality for
    the maximising successor."""
    g = erdos_dag(n, p, make_rng(seed))
    bl = bottom_levels(g)
    for t in g.tasks():
        for s in g.succs(t):
            assert bl[t] >= g.comp(t) + g.comm(t, s) + bl[s] - 1e-9
        if g.succs(t):
            best = max(g.comm(t, s) + bl[s] for s in g.succs(t))
            assert bl[t] == pytest.approx(g.comp(t) + best)
        else:
            assert bl[t] == pytest.approx(g.comp(t))


class TestVectorizedLevels:
    """The CSR frontier sweeps (``bottom_levels_array`` / ``top_levels_array``)
    must be bit-identical to the pure-Python recurrences they accelerate —
    both compute ``comp + max(comm + level)`` over the same CSR slices, so
    ``==`` applies, never ``approx``."""

    def _graphs(self):
        yield paper_example()
        yield chain(30, make_rng(1))
        yield independent_tasks(20, make_rng(2))
        yield fft(8, make_rng(3), ccr=5.0)
        for seed, density in ((4, 0.05), (5, 0.2), (6, 0.5)):
            yield erdos_dag(80, density, make_rng(seed), ccr=(0.2, 1.0, 5.0)[seed % 3])
        yield layered_random(12, 9, make_rng(7), edge_density=0.3, ccr=2.0)

    def test_bottom_levels_array_bit_identical(self):
        from repro.graph.properties import _bottom_levels_py, bottom_levels_array

        for g in self._graphs():
            g.freeze()
            assert bottom_levels_array(g).tolist() == _bottom_levels_py(g)

    def test_top_levels_array_bit_identical(self):
        from repro.graph.properties import _top_levels_py, top_levels_array

        for g in self._graphs():
            g.freeze()
            assert top_levels_array(g).tolist() == _top_levels_py(g)

    def test_dispatch_uses_array_path_above_threshold(self, monkeypatch):
        import repro.graph.properties as props

        monkeypatch.setattr(props, "_VECTOR_MIN_TASKS", 0)
        g = erdos_dag(60, 0.15, make_rng(11), ccr=1.0)
        g.freeze()
        assert props.bottom_levels(g) == props._bottom_levels_py(g)
        assert props.top_levels(g) == props._top_levels_py(g)

    def test_cached_results_are_defensive_copies(self):
        g = erdos_dag(40, 0.2, make_rng(12))
        g.freeze()
        first = bottom_levels(g)
        first[0] = -123.0
        assert bottom_levels(g)[0] != -123.0
        tl = top_levels(g)
        tl[0] = -123.0
        assert top_levels(g)[0] != -123.0

    def test_hypothesis_like_sweep(self):
        from repro.graph.properties import (
            _bottom_levels_py,
            _top_levels_py,
            bottom_levels_array,
            top_levels_array,
        )

        for seed in range(25):
            g = erdos_dag(
                5 + seed * 3, 0.05 + (seed % 5) * 0.1, make_rng(100 + seed),
                ccr=(0.2, 1.0, 5.0)[seed % 3],
            )
            g.freeze()
            assert bottom_levels_array(g).tolist() == _bottom_levels_py(g)
            assert top_levels_array(g).tolist() == _top_levels_py(g)
