"""Snapshot of the ``repro`` public surface.

``repro.__all__`` is a compatibility promise: removals and renames are
breaking changes and must fail here first, deliberately.  Additions are
fine — extend :data:`EXPECTED_ALL` in the same change that exports the
new name.
"""

import repro

#: The promised public surface, sorted.  Change this list only in a
#: change that also updates docs/observability.md / the README.
EXPECTED_ALL = sorted(
    [
        "__version__",
        "TaskGraph",
        "MachineModel",
        "flb",
        "schedule_graph",
        "schedule_many",
        "BatchScheduler",
        "SchedulingOptions",
        "MetricsRegistry",
        "lint",
        "certify",
        "ServeConfig",
        "BackgroundServer",
    ]
)


class TestPublicSurface:
    def test_all_snapshot(self):
        assert sorted(repro.__all__) == EXPECTED_ALL

    def test_every_name_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_dir_covers_all(self):
        listing = dir(repro)
        for name in repro.__all__:
            assert name in listing

    def test_unknown_attribute_raises(self):
        try:
            repro.no_such_name
        except AttributeError as exc:
            assert "no_such_name" in str(exc)
        else:  # pragma: no cover - the assertion is the point
            raise AssertionError("expected AttributeError")


class TestLazyBindings:
    """The lazy names must resolve to their canonical definitions."""

    def test_machine_model_is_machine_module(self):
        from repro.machine import MachineModel

        assert repro.MachineModel is MachineModel

    def test_schedule_graph_is_api_module(self):
        from repro.api import schedule_graph

        assert repro.schedule_graph is schedule_graph

    def test_options_is_api_module(self):
        from repro.api import SchedulingOptions

        assert repro.SchedulingOptions is SchedulingOptions

    def test_batch_names(self):
        from repro.batch import BatchScheduler, schedule_many

        assert repro.schedule_many is schedule_many
        assert repro.BatchScheduler is BatchScheduler

    def test_obs_and_verify_names(self):
        from repro.obs import MetricsRegistry
        from repro.verify import certify, lint

        assert repro.MetricsRegistry is MetricsRegistry
        assert repro.lint is lint
        assert repro.certify is certify

    def test_serve_names(self):
        from repro.serve import BackgroundServer, ServeConfig

        assert repro.ServeConfig is ServeConfig
        assert repro.BackgroundServer is BackgroundServer
