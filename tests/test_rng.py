"""Tests for seeded RNG helpers and weight samplers."""

import numpy as np
import pytest

from repro.util.rng import (
    WEIGHT_DISTRIBUTIONS,
    make_rng,
    sample_weights,
    scale_to_ccr,
    spawn_rngs,
)


class TestMakeRng:
    def test_deterministic(self):
        a = make_rng(123).random(5)
        b = make_rng(123).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).random(5)
        b = make_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_spawn_rngs_independent_and_stable(self):
        streams1 = [r.random(4) for r in spawn_rngs(9, 3)]
        streams2 = [r.random(4) for r in spawn_rngs(9, 3)]
        for s1, s2 in zip(streams1, streams2):
            assert np.array_equal(s1, s2)
        assert not np.array_equal(streams1[0], streams1[1])


class TestSampleWeights:
    @pytest.mark.parametrize("dist", sorted(WEIGHT_DISTRIBUTIONS))
    def test_positive_and_mean(self, dist):
        rng = make_rng(0)
        w = sample_weights(rng, mean=3.0, n=20000, distribution=dist)
        assert w.shape == (20000,)
        assert (w > 0).all()
        assert w.mean() == pytest.approx(3.0, rel=0.05)

    def test_constant_exact(self):
        w = sample_weights(make_rng(0), 2.5, 7, "constant")
        assert np.array_equal(w, np.full(7, 2.5))

    def test_exponential_unit_cv(self):
        w = sample_weights(make_rng(1), 1.0, 200000, "exponential")
        cv = w.std() / w.mean()
        assert cv == pytest.approx(1.0, abs=0.02)

    def test_uniform_cv_is_one_over_sqrt3(self):
        w = sample_weights(make_rng(1), 1.0, 200000, "uniform")
        cv = w.std() / w.mean()
        assert cv == pytest.approx(1 / np.sqrt(3), abs=0.02)

    def test_bad_args(self):
        rng = make_rng(0)
        with pytest.raises(ValueError):
            sample_weights(rng, -1.0, 5)
        with pytest.raises(ValueError):
            sample_weights(rng, 1.0, -5)
        with pytest.raises(ValueError):
            sample_weights(rng, 1.0, 5, "gaussian")

    def test_zero_samples(self):
        assert sample_weights(make_rng(0), 1.0, 0).size == 0


class TestScaleToCcr:
    def test_exact_ccr(self):
        rng = make_rng(3)
        comp = sample_weights(rng, 2.0, 500)
        comm = sample_weights(rng, 7.0, 800)
        for target in (0.2, 1.0, 5.0):
            scaled = scale_to_ccr(comp, comm, target)
            achieved = scaled.mean() / comp.mean()
            assert achieved == pytest.approx(target, rel=1e-12)

    def test_preserves_relative_magnitudes(self):
        comp = np.array([1.0, 1.0])
        comm = np.array([1.0, 3.0])
        scaled = scale_to_ccr(comp, comm, 2.0)
        assert scaled[1] / scaled[0] == pytest.approx(3.0)

    def test_no_edges(self):
        assert scale_to_ccr([1.0], [], 5.0).size == 0

    def test_errors(self):
        with pytest.raises(ValueError):
            scale_to_ccr([1.0], [1.0], -1.0)
        with pytest.raises(ValueError):
            scale_to_ccr([], [1.0], 1.0)
        with pytest.raises(ValueError):
            scale_to_ccr([1.0], [0.0, 0.0], 1.0)
