"""Tests for Sarkar's edge-zeroing clustering and the sarkar-llb pipeline."""

import pytest

from repro.machine import MachineModel
from repro.graph import bottom_levels, critical_path_length, static_levels
from repro.schedulers import SCHEDULERS, dsc, sarkar, sarkar_llb
from repro.schedulers.sarkar import estimate_parallel_time
from repro.util.rng import make_rng
from repro.workloads import (
    chain,
    erdos_dag,
    fork_join,
    independent_tasks,
    lu,
    paper_example,
    stencil,
)


class TestEstimator:
    def test_singleton_clusters_equal_full_comm_schedule(self):
        g = paper_example()
        machine = MachineModel(1)
        bl = bottom_levels(g)
        time, start = estimate_parallel_time(g, list(g.tasks()), machine, bl)
        # Unbounded processors, all comm paid: the makespan is the CP.
        assert time == pytest.approx(critical_path_length(g))
        assert start[0] == 0.0

    def test_single_cluster_is_serial(self):
        g = lu(6, make_rng(0), ccr=3.0)
        machine = MachineModel(1)
        bl = bottom_levels(g)
        time, _ = estimate_parallel_time(g, [0] * g.num_tasks, machine, bl)
        assert time == pytest.approx(g.total_comp())

    def test_start_times_respect_dependencies(self):
        g = erdos_dag(20, 0.3, make_rng(1), ccr=2.0)
        machine = MachineModel(1)
        bl = bottom_levels(g)
        c = dsc(g)
        _, start = estimate_parallel_time(g, list(c.cluster_of), machine, bl)
        for src, dst, comm in g.edges():
            gap = start[dst] - (start[src] + g.comp(src))
            if c.cluster_of[src] == c.cluster_of[dst]:
                assert gap >= -1e-9
            else:
                assert gap >= comm - 1e-9


class TestSarkarClustering:
    def test_partition(self):
        g = erdos_dag(18, 0.25, make_rng(2), ccr=2.0)
        c = sarkar(g)
        seen = sorted(t for cl in c.clusters for t in cl)
        assert seen == list(range(18))
        for cid, cl in enumerate(c.clusters):
            for t in cl:
                assert c.cluster_of[t] == cid

    def test_never_worse_than_no_clustering(self):
        """Merges are only accepted when the estimated parallel time does
        not increase, so the result is at most the full-communication CP."""
        for seed in range(4):
            g = erdos_dag(16, 0.3, make_rng(seed), ccr=4.0)
            c = sarkar(g)
            assert c.makespan <= critical_path_length(g) + 1e-9
            assert c.makespan >= max(static_levels(g)) - 1e-9

    def test_chain_collapses(self):
        g = chain(8, make_rng(3), ccr=5.0)
        c = sarkar(g)
        assert c.num_clusters == 1

    def test_independent_tasks_stay_apart(self):
        c = sarkar(independent_tasks(6))
        assert c.num_clusters == 6

    def test_zeroes_heavy_edges_first(self):
        # The paper example's heaviest edge t0->t2 (comm 4) gets zeroed.
        g = paper_example()
        c = sarkar(g)
        assert c.cluster_of[0] == c.cluster_of[2]

    def test_cluster_order_topological(self):
        g = lu(6, make_rng(4), ccr=2.0)
        c = sarkar(g)
        pos = {}
        for cl in c.clusters:
            for i, t in enumerate(cl):
                pos[t] = i
        for src, dst, _ in g.edges():
            if c.cluster_of[src] == c.cluster_of[dst]:
                assert pos[src] < pos[dst]


class TestSarkarLlb:
    @pytest.mark.parametrize("procs", [1, 2, 4])
    def test_valid_schedules(self, procs):
        for builder in (
            lambda: paper_example(),
            lambda: lu(7, make_rng(5), ccr=5.0),
            lambda: stencil(5, 5, make_rng(6), ccr=0.2),
            lambda: fork_join(3, 4, make_rng(7), ccr=1.0),
        ):
            s = sarkar_llb(builder(), procs)
            assert s.complete
            assert s.violations() == []

    def test_registry_entry(self):
        s = SCHEDULERS["sarkar-llb"](paper_example(), 2)
        assert s.violations() == []

    def test_competitive_with_dsc_llb_on_average(self):
        """Both are clustering+LLB; neither should dominate catastrophically
        on small communication-heavy graphs."""
        ratios = []
        for seed in range(5):
            g = erdos_dag(20, 0.25, make_rng(seed), ccr=5.0)
            srk = sarkar_llb(g, 4).makespan
            dsl = SCHEDULERS["dsc-llb"](g, 4).makespan
            ratios.append(srk / dsl)
        mean = sum(ratios) / len(ratios)
        assert 0.6 < mean < 1.6
