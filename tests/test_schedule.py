"""Tests for the Schedule class: placement, queries, validation, rendering."""

import pytest

from repro.exceptions import InvalidScheduleError, ScheduleError
from repro.graph import TaskGraph
from repro.machine import MachineModel
from repro.schedule import Schedule, render_gantt
from repro.workloads import paper_example, simple_diamond


def make_chain_graph():
    g = TaskGraph()
    a = g.add_task(2.0, name="a")
    b = g.add_task(3.0, name="b")
    g.add_edge(a, b, 4.0)
    return g.freeze()


class TestPlacement:
    def test_place_computes_finish(self):
        g = make_chain_graph()
        s = Schedule(g, MachineModel(2))
        entry = s.place(0, 0, 0.0)
        assert entry.finish == 2.0
        assert s.prt(0) == 2.0
        assert s.proc_of(0) == 0
        assert s.start_of(0) == 0.0
        assert s.finish_of(0) == 2.0

    def test_requires_frozen_graph(self):
        g = TaskGraph()
        g.add_task(1.0)
        with pytest.raises(ScheduleError):
            Schedule(g, MachineModel(1))

    def test_double_place_rejected(self):
        g = make_chain_graph()
        s = Schedule(g, MachineModel(2))
        s.place(0, 0, 0.0)
        with pytest.raises(ScheduleError):
            s.place(0, 1, 5.0)

    def test_place_before_prt_rejected(self):
        g = make_chain_graph()
        s = Schedule(g, MachineModel(1))
        s.place(0, 0, 0.0)
        with pytest.raises(ScheduleError):
            s.place(1, 0, 1.0)  # PRT(0) is 2.0

    def test_unknown_ids_rejected(self):
        g = make_chain_graph()
        s = Schedule(g, MachineModel(1))
        with pytest.raises(ScheduleError):
            s.place(9, 0, 0.0)
        with pytest.raises(ScheduleError):
            s.place(0, 3, 0.0)

    def test_unscheduled_queries_raise(self):
        g = make_chain_graph()
        s = Schedule(g, MachineModel(1))
        with pytest.raises(ScheduleError):
            s.proc_of(0)
        assert not s.is_scheduled(0)
        assert not s.complete

    def test_complete_and_len(self):
        g = make_chain_graph()
        s = Schedule(g, MachineModel(2))
        s.place(0, 0, 0.0)
        assert len(s) == 1
        s.place(1, 1, 6.0)
        assert s.complete
        assert len(s) == 2

    def test_makespan_and_proc_tasks(self):
        g = make_chain_graph()
        s = Schedule(g, MachineModel(2))
        s.place(0, 0, 0.0)
        s.place(1, 0, 2.0)
        assert s.makespan == 5.0
        assert s.proc_tasks(0) == (0, 1)
        assert s.proc_tasks(1) == ()
        assert s.num_procs_used() == 1

    def test_iteration_order(self):
        g = simple_diamond()
        s = Schedule(g, MachineModel(2))
        s.place(0, 0, 0.0)
        s.place(2, 1, 2.0)
        s.place(1, 0, 1.0)
        s.place(3, 1, 5.0)
        starts = [e.start for e in s]
        assert starts == sorted(starts)

    def test_assignment(self):
        g = make_chain_graph()
        s = Schedule(g, MachineModel(2))
        s.place(0, 1, 0.0)
        assert s.assignment() == {0: 1}


class TestValidation:
    def test_valid_same_proc_schedule(self):
        g = make_chain_graph()
        s = Schedule(g, MachineModel(1))
        s.place(0, 0, 0.0)
        s.place(1, 0, 2.0)  # same proc: comm is free
        assert s.violations() == []
        assert s.validate() is s

    def test_cross_proc_comm_violation(self):
        g = make_chain_graph()
        s = Schedule(g, MachineModel(2))
        s.place(0, 0, 0.0)
        s.place(1, 1, 3.0)  # needs FT(0) + comm = 6
        problems = s.violations()
        assert any("message arrival" in p for p in problems)
        with pytest.raises(InvalidScheduleError):
            s.validate()

    def test_cross_proc_comm_satisfied(self):
        g = make_chain_graph()
        s = Schedule(g, MachineModel(2))
        s.place(0, 0, 0.0)
        s.place(1, 1, 6.0)
        assert s.violations() == []

    def test_missing_task_reported(self):
        g = make_chain_graph()
        s = Schedule(g, MachineModel(1))
        s.place(0, 0, 0.0)
        assert any("not scheduled" in p for p in s.violations())

    def test_machine_scale_affects_validity(self):
        g = make_chain_graph()
        m = MachineModel(2, comm_scale=0.5)
        s = Schedule(g, m)
        s.place(0, 0, 0.0)
        s.place(1, 1, 4.0)  # arrival = 2 + 0.5*4 = 4
        assert s.violations() == []

    def test_paper_example_known_schedule_is_valid(self):
        # The FLB schedule from Table 1, hand-checked.
        g = paper_example()
        s = Schedule(g, MachineModel(2))
        s.place(0, 0, 0.0)
        s.place(3, 0, 2.0)
        s.place(1, 1, 3.0)
        s.place(2, 0, 5.0)
        s.place(4, 1, 5.0)
        s.place(5, 0, 7.0)
        s.place(6, 1, 8.0)
        s.place(7, 0, 12.0)
        assert s.violations() == []
        assert s.makespan == 14.0


class TestRendering:
    def _full_schedule(self):
        g = simple_diamond()
        s = Schedule(g, MachineModel(2))
        s.place(0, 0, 0.0)
        s.place(1, 0, 1.0)
        s.place(2, 1, 2.0)
        s.place(3, 1, 5.0)
        return s

    def test_as_table(self):
        text = self._full_schedule().as_table()
        assert "makespan" in text
        assert "a" in text and "d" in text

    def test_gantt_rows(self):
        text = render_gantt(self._full_schedule(), width=40)
        lines = text.splitlines()
        assert lines[0].startswith("P0")
        assert lines[1].startswith("P1")
        assert "=" in lines[0]

    def test_gantt_width_validation(self):
        with pytest.raises(ValueError):
            render_gantt(self._full_schedule(), width=5)

    def test_repr(self):
        s = self._full_schedule()
        assert "complete" in repr(s)
