"""Tests for schedule slack analysis, idle accounting, and schedule I/O."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import flb
from repro.exceptions import ScheduleError
from repro.machine import MachineModel
from repro.schedule import (
    Schedule,
    critical_tasks,
    idle_profile,
    load_schedule,
    save_schedule,
    schedule_from_json,
    schedule_to_json,
    slack_times,
)
from repro.schedulers import SCHEDULERS, mcp_insertion
from repro.util.rng import make_rng
from repro.workloads import erdos_dag, independent_tasks, lu, paper_example


class TestSlack:
    def test_nonnegative_and_someone_critical(self):
        s = flb(paper_example(), 2)
        slack = slack_times(s)
        assert all(v >= -1e-9 for v in slack)
        crit = critical_tasks(s)
        assert crit, "some task must pin the makespan"

    def test_last_finishing_task_is_critical(self):
        s = flb(lu(9, make_rng(0), ccr=2.0), 3)
        slack = slack_times(s)
        last = max(s.graph.tasks(), key=lambda t: s.finish_of(t))
        assert slack[last] == pytest.approx(0.0, abs=1e-9)

    def test_paper_example_values(self):
        # Table 1 schedule: t7 finishes at 14 (critical); t0..t3..t5..t7 is
        # the binding chain; t6's message (arr. 12) binds t7 too.
        s = flb(paper_example(), 2)
        slack = slack_times(s)
        assert slack[7] == pytest.approx(0.0)
        assert slack[0] == pytest.approx(0.0)  # t0 -> t3 chain is tight
        # t4 finishes at 8; its message to t7 arrives at 9 << t7's start 12,
        # and nothing else consumes p1 until t6 at 8 -> slack 0 via proc
        # order? t4 precedes t6 on p1 and t6 can slip 2 (message arr 12 vs
        # needed <= 12): compute explicitly rather than guess:
        assert slack[4] >= 0.0

    def test_slack_semantics_via_replay(self):
        """Empirical definition check with the self-timed executor:
        inflating a zero-slack task extends the makespan by the full
        inflation; inflating a positive-slack task by less than its slack
        leaves the makespan unchanged."""
        g = lu(8, make_rng(1), ccr=1.0)
        s = flb(g, 3)
        slack = slack_times(s)
        comp = [g.comp(t) for t in g.tasks()]

        crit = critical_tasks(s)
        assert crit
        target = crit[len(crit) // 2]
        grown = _replay_like(s, comp, target, delta=0.5)
        assert grown == pytest.approx(s.makespan + 0.5)

        slackful = max(g.tasks(), key=lambda t: slack[t])
        if slack[slackful] > 1e-6:
            delta = slack[slackful] * 0.5
            unchanged = _replay_like(s, comp, slackful, delta=delta)
            assert unchanged == pytest.approx(s.makespan)

    def test_incomplete_rejected(self):
        g = paper_example()
        s = Schedule(g, MachineModel(2))
        with pytest.raises(ScheduleError):
            slack_times(s)
        with pytest.raises(ScheduleError):
            idle_profile(s)


def _replay_like(schedule, comp, target, delta):
    """Self-timed replay with one task's comp inflated."""
    from repro.sim.executor import _replay

    new_comp = list(comp)
    new_comp[target] += delta
    return _replay(schedule, new_comp).makespan


class TestIdleProfile:
    def test_accounts_for_full_timeline(self):
        s = flb(lu(8, make_rng(2), ccr=2.0), 3)
        profile = idle_profile(s)
        span = s.makespan
        for p in range(3):
            total = (
                profile.busy[p]
                + profile.idle_internal[p]
                + profile.idle_leading[p]
                + profile.idle_trailing[p]
            )
            assert total == pytest.approx(span)

    def test_empty_processor(self):
        s = flb(independent_tasks(2), 4)
        profile = idle_profile(s)
        empty = [p for p in range(4) if not s.proc_tasks(p)]
        for p in empty:
            assert profile.busy[p] == 0.0
            assert profile.idle_trailing[p] == pytest.approx(s.makespan)

    def test_no_idle_on_saturated_schedule(self):
        s = flb(independent_tasks(8), 4)
        profile = idle_profile(s)
        assert profile.total_idle == pytest.approx(0.0)


class TestScheduleIo:
    def roundtrip(self, s):
        return schedule_from_json(schedule_to_json(s))

    def test_roundtrip_paper_example(self):
        s = flb(paper_example(), 2)
        s2 = self.roundtrip(s)
        assert s2.makespan == s.makespan
        for t in s.graph.tasks():
            assert s2.proc_of(t) == s.proc_of(t)
            assert s2.start_of(t) == s.start_of(t)

    def test_roundtrip_inserted_schedule(self):
        g = lu(8, make_rng(3), ccr=5.0)
        s = mcp_insertion(g, 3)
        s2 = self.roundtrip(s)
        assert s2.makespan == pytest.approx(s.makespan)

    def test_roundtrip_extended_machine(self):
        g = erdos_dag(15, 0.3, make_rng(4), ccr=2.0)
        m = MachineModel(3, comm_scale=1.5, latency=0.25)
        s = flb(g, machine=m)
        s2 = self.roundtrip(s)
        assert s2.machine == m

    def test_file_roundtrip(self, tmp_path):
        s = flb(paper_example(), 2)
        path = tmp_path / "s.json"
        save_schedule(s, path)
        assert load_schedule(path).makespan == 14.0

    def test_incomplete_rejected(self):
        g = paper_example()
        s = Schedule(g, MachineModel(2))
        with pytest.raises(ScheduleError):
            schedule_to_json(s)

    def test_garbage_rejected(self):
        with pytest.raises(ScheduleError):
            schedule_from_json("{}")
        with pytest.raises(ScheduleError):
            schedule_from_json("not json")

    def test_invalid_placements_rejected(self):
        s = flb(paper_example(), 2)
        import json

        doc = json.loads(schedule_to_json(s))
        doc["placements"][3]["start"] = 0.0  # break precedence
        with pytest.raises(ScheduleError):
            schedule_from_json(json.dumps(doc))


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 25),
    p=st.floats(0.0, 0.5),
    procs=st.integers(1, 5),
    seed=st.integers(0, 4000),
)
def test_property_slack_and_io(n, p, procs, seed):
    g = erdos_dag(n, p, make_rng(seed), ccr=1.5)
    s = SCHEDULERS["flb"](g, procs)
    slack = slack_times(s)
    assert all(v >= -1e-9 for v in slack)
    assert min(slack) == pytest.approx(0.0, abs=1e-9)
    s2 = schedule_from_json(schedule_to_json(s))
    assert s2.makespan == pytest.approx(s.makespan)
