"""Cross-scheduler properties: every algorithm must produce valid schedules
on every workload family, respect basic bounds, and be deterministic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import schedule_graph
from repro.exceptions import SchedulerError
from repro.graph import static_levels
from repro.machine import MachineModel
from repro.schedulers import SCHEDULERS, get_scheduler
from repro.util.rng import make_rng
from repro.workloads import (
    chain,
    cholesky,
    erdos_dag,
    fft,
    fork_join,
    independent_tasks,
    laplace,
    lu,
    paper_example,
    series_parallel,
    stencil,
)

ALL = sorted(SCHEDULERS)

WORKLOADS = [
    ("paper", lambda: paper_example()),
    ("lu", lambda: lu(8, make_rng(0), ccr=1.0)),
    ("laplace", lambda: laplace(4, 3, make_rng(1), ccr=5.0)),
    ("stencil", lambda: stencil(6, 5, make_rng(2), ccr=0.2)),
    ("fft", lambda: fft(8, make_rng(3), ccr=1.0)),
    ("cholesky", lambda: cholesky(4, make_rng(4), ccr=1.0)),
    ("fork_join", lambda: fork_join(3, 5, make_rng(5), ccr=2.0)),
    ("sp", lambda: series_parallel(15, make_rng(6), ccr=1.0)),
    ("chain", lambda: chain(8, make_rng(7), ccr=4.0)),
    ("independent", lambda: independent_tasks(12, make_rng(8))),
]


@pytest.mark.parametrize("algo", ALL)
@pytest.mark.parametrize("wname,builder", WORKLOADS)
@pytest.mark.parametrize("procs", [1, 3])
def test_valid_complete_schedules(algo, wname, builder, procs):
    g = builder()
    s = SCHEDULERS[algo](g, procs)
    assert s.complete
    assert s.violations() == []


@pytest.mark.parametrize("algo", ALL)
def test_lower_bounds(algo):
    g = lu(10, make_rng(9), ccr=0.5)
    for procs in (2, 4):
        s = SCHEDULERS[algo](g, procs)
        # Work bound and (communication-free) critical-path bound.
        assert s.makespan >= g.total_comp() / procs - 1e-9
        assert s.makespan >= max(static_levels(g)) - 1e-9


@pytest.mark.parametrize("algo", ALL)
def test_deterministic(algo):
    g = erdos_dag(40, 0.15, make_rng(10), ccr=2.0)
    s1 = SCHEDULERS[algo](g, 4)
    s2 = SCHEDULERS[algo](g, 4)
    assert s1.assignment() == s2.assignment()
    assert [s1.start_of(t) for t in g.tasks()] == [s2.start_of(t) for t in g.tasks()]


@pytest.mark.parametrize("algo", ALL)
def test_single_proc_serialises(algo):
    g = erdos_dag(25, 0.2, make_rng(11), ccr=3.0)
    s = SCHEDULERS[algo](g, 1)
    assert s.makespan == pytest.approx(g.total_comp())
    assert s.violations() == []


@pytest.mark.parametrize("algo", ALL)
def test_machine_argument(algo):
    g = paper_example()
    m = MachineModel(2, comm_scale=2.0)
    s = SCHEDULERS[algo](g, machine=m)
    assert s.violations() == []
    with pytest.raises(SchedulerError):
        SCHEDULERS[algo](g, 3, machine=m)
    with pytest.raises(SchedulerError):
        SCHEDULERS[algo](g)


class TestRegistry:
    def test_get_scheduler_known(self):
        for name in ALL:
            assert callable(get_scheduler(name))

    def test_get_scheduler_unknown(self):
        with pytest.raises(SchedulerError):
            get_scheduler("nope")

    def test_top_level_schedule_helper(self):
        s = schedule_graph(paper_example(), 2, algorithm="flb")
        assert s.makespan == 14.0
        s = schedule_graph(paper_example(), 2)  # default algorithm is flb
        assert s.makespan == 14.0

    def test_top_level_passes_kwargs(self):
        s = schedule_graph(paper_example(), 2, algorithm="mcp", seed=3)
        assert s.violations() == []


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 30),
    p=st.floats(0.0, 0.4),
    ccr=st.floats(0.1, 6.0),
    procs=st.integers(1, 6),
    seed=st.integers(0, 5000),
)
def test_property_all_schedulers_valid_on_random_dags(n, p, ccr, procs, seed):
    g = erdos_dag(n, p, make_rng(seed), ccr=ccr)
    for algo in ALL:
        s = SCHEDULERS[algo](g, procs)
        assert s.complete
        assert s.violations() == [], f"{algo} produced an invalid schedule"


@settings(max_examples=15, deadline=None)
@given(
    procs=st.integers(2, 6),
    seed=st.integers(0, 5000),
    scale=st.floats(0.1, 3.0),
    latency=st.floats(0.0, 2.0),
)
def test_property_extended_machines(procs, seed, scale, latency):
    g = erdos_dag(20, 0.25, make_rng(seed), ccr=2.0)
    m = MachineModel(procs, comm_scale=scale, latency=latency)
    for algo in ALL:
        s = SCHEDULERS[algo](g, machine=m)
        assert s.violations() == [], f"{algo} invalid under extended machine"
