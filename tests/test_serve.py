"""The scheduling service: fairness, admission, coalescing, drain, HTTP.

Deterministic parts run against :class:`repro.serve.SchedulingService`
with an injected runner (counting/gated stubs) driven inside
``asyncio.run`` — no sockets, no timing races.  One end-to-end class runs
the real thing over localhost via :class:`repro.serve.BackgroundServer`:
register a graph, schedule by fingerprint, hit the cache, scrape
``/metrics`` through :func:`repro.obs.parse_prometheus`, drain.
"""

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.batch import BatchResult
from repro.graph.io import to_json
from repro.obs import parse_prometheus
from repro.serve import (
    AdmissionController,
    BackgroundServer,
    QueueFull,
    SchedulingService,
    ServeConfig,
    ShedError,
    WeightedFairQueue,
    route,
)
from repro.util.rng import make_rng
from repro.workloads import lu


def _graph():
    return lu(5, make_rng(0))


def _graph_doc():
    return json.loads(to_json(_graph()))


def _stub_result(job, options):
    """A canned BatchResult shaped like a successful inline run."""
    return BatchResult(
        tag=job.tag, algo=job.algo, procs=job.procs, num_tasks=15,
        makespan=10.0, speedup=1.5, procs_used=job.procs, seconds=0.001,
        kernel="array",
    )


# -- the weighted-fair queue -------------------------------------------------

class TestWeightedFairQueue:
    def _drain(self, q, n):
        async def body():
            out = []
            for _ in range(n):
                tenant, _item = await q.get()
                q.task_done()
                out.append(tenant)
            return out
        return asyncio.run(body())

    def test_weighted_share_under_contention(self):
        q = WeightedFairQueue(weights={"a": 3.0, "b": 1.0})
        for i in range(8):
            q.put_nowait("a", f"a{i}")
            q.put_nowait("b", f"b{i}")
        order = self._drain(q, 8)
        # Over a backlogged window, tenant shares follow the 3:1 weights.
        assert order.count("a") == 6 and order.count("b") == 2

    def test_equal_weights_alternate(self):
        q = WeightedFairQueue()
        for i in range(4):
            q.put_nowait("x", i)
            q.put_nowait("y", i)
        order = self._drain(q, 8)
        assert order.count("x") == 4 and order.count("y") == 4

    def test_fifo_within_tenant(self):
        q = WeightedFairQueue()
        for i in range(5):
            q.put_nowait("t", i)

        async def body():
            items = []
            for _ in range(5):
                _tenant, item = await q.get()
                q.task_done()
                items.append(item)
            return items

        assert asyncio.run(body()) == [0, 1, 2, 3, 4]

    def test_late_tenant_is_not_starved(self):
        q = WeightedFairQueue()
        for i in range(10):
            q.put_nowait("busy", i)
        self._drain(q, 5)
        q.put_nowait("late", "first")
        # The newcomer is stamped at the current virtual clock, not behind
        # the incumbent's whole backlog.
        order = self._drain(q, 3)
        assert "late" in order

    def test_bounded_and_raises_queue_full(self):
        q = WeightedFairQueue(maxsize=2)
        q.put_nowait("t", 1)
        q.put_nowait("t", 2)
        assert q.full()
        with pytest.raises(QueueFull):
            q.put_nowait("t", 3)

    def test_join_waits_for_task_done(self):
        q = WeightedFairQueue()
        q.put_nowait("t", 1)

        async def body():
            joined = asyncio.ensure_future(q.join())
            await asyncio.sleep(0)
            assert not joined.done()
            await q.get()
            await asyncio.sleep(0)
            assert not joined.done()  # gotten but not yet processed
            q.task_done()
            await asyncio.wait_for(joined, timeout=1.0)

        asyncio.run(body())

    def test_depths_and_weight_validation(self):
        q = WeightedFairQueue(weights={"a": 2.0})
        q.put_nowait("a", 1)
        q.put_nowait("b", 2)
        assert q.depths() == {"a": 1, "b": 1}
        assert q.weight_of("a") == 2.0 and q.weight_of("b") == 1.0
        with pytest.raises(ValueError):
            WeightedFairQueue(weights={"bad": 0.0})
        with pytest.raises(ValueError):
            WeightedFairQueue(default_weight=-1.0)


# -- admission control -------------------------------------------------------

class TestAdmissionController:
    def test_sheds_at_the_backlog_bound(self):
        adm = AdmissionController(max_backlog=2)
        adm.admit(0)
        adm.admit(1)
        with pytest.raises(ShedError) as exc:
            adm.admit(2)
        assert exc.value.retry_after >= 1
        assert "backlog full" in exc.value.reason

    def test_draining_sheds_unconditionally(self):
        adm = AdmissionController(max_backlog=100)
        with pytest.raises(ShedError) as exc:
            adm.admit(0, draining=True)
        assert "draining" in exc.value.reason

    def test_retry_after_tracks_observed_service_time(self):
        adm = AdmissionController(max_backlog=10)
        adm.observe_service(2.0)  # first sample replaces the prior
        assert adm.service_estimate == 2.0
        # 5 queued jobs at ~2s each through one dispatcher: ~12s hint.
        assert adm.retry_after(5) == 12
        fast = AdmissionController(max_backlog=10, dispatchers=4)
        fast.observe_service(2.0)
        assert fast.retry_after(5) == 3

    def test_retry_after_is_clamped_and_integral(self):
        adm = AdmissionController(max_backlog=10)
        adm.observe_service(1e-6)
        assert adm.retry_after(0) == 1  # never 0: the header must back off
        adm.observe_service(1e9)
        assert adm.retry_after(1000) == 120

    def test_ewma_converges(self):
        adm = AdmissionController(max_backlog=10, alpha=0.5)
        adm.observe_service(1.0)
        adm.observe_service(3.0)
        assert adm.service_estimate == 2.0
        assert adm.observations == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_backlog=0)
        with pytest.raises(ValueError):
            AdmissionController(max_backlog=1, dispatchers=0)
        with pytest.raises(ValueError):
            AdmissionController(max_backlog=1, alpha=0.0)


# -- the service core (injected runner, no sockets) --------------------------

class TestCoalescing:
    def test_identical_concurrent_requests_compute_once(self):
        calls = []

        def runner(job, options):
            calls.append(job)
            time.sleep(0.05)  # hold the computation open across submits
            return _stub_result(job, options)

        service = SchedulingService(
            config=ServeConfig(max_backlog=16), runner=runner
        )
        try:
            reg = service.register_graph({"graph": _graph_doc()})
            payload = {"fingerprint": reg["fingerprint"], "procs": 4}

            async def body():
                service.start()
                results = await asyncio.gather(
                    *(service.submit(dict(payload)) for _ in range(5))
                )
                await service.drain()
                return results

            results = asyncio.run(body())
            assert len(calls) == 1  # one dispatch served all five requests
            assert sum(r["coalesced"] for r in results) == 4
            assert all(r["ok"] and r["makespan"] == 10.0 for r in results)
            assert service.registry.total("serve_coalesced_total") == 4.0
        finally:
            service.close()

    def test_different_options_do_not_coalesce(self):
        calls = []

        def runner(job, options):
            calls.append((job.procs, options.certify))
            time.sleep(0.02)
            return _stub_result(job, options)

        service = SchedulingService(
            config=ServeConfig(max_backlog=16), runner=runner
        )
        try:
            reg = service.register_graph({"graph": _graph_doc()})
            fp = reg["fingerprint"]

            async def body():
                service.start()
                results = await asyncio.gather(
                    service.submit({"fingerprint": fp, "procs": 2}),
                    service.submit({"fingerprint": fp, "procs": 3}),
                    service.submit({"fingerprint": fp, "procs": 2,
                                    "certify": True}),
                )
                await service.drain()
                return results

            results = asyncio.run(body())
            assert len(calls) == 3
            assert not any(r["coalesced"] for r in results)
        finally:
            service.close()


class TestSheddingAndDrain:
    def test_backlog_bound_sheds_with_retry_after(self):
        gate = threading.Event()

        def runner(job, options):
            gate.wait(timeout=10.0)
            return _stub_result(job, options)

        service = SchedulingService(
            config=ServeConfig(max_backlog=1), runner=runner
        )
        try:
            reg = service.register_graph({"graph": _graph_doc()})
            fp = reg["fingerprint"]

            async def body():
                service.start()
                first = asyncio.ensure_future(
                    service.submit({"fingerprint": fp, "procs": 2})
                )
                await asyncio.sleep(0.05)  # let it occupy the one slot
                with pytest.raises(ShedError) as exc:
                    await service.submit({"fingerprint": fp, "procs": 3})
                assert exc.value.retry_after >= 1
                gate.set()
                result = await first
                await service.drain()
                return result

            result = asyncio.run(body())
            assert result["ok"] and not result["coalesced"]
            assert service.registry.total("serve_shed_total") == 1.0
        finally:
            service.close()

    def test_drain_completes_inflight_and_sheds_new_work(self):
        gate = threading.Event()
        done = []

        def runner(job, options):
            gate.wait(timeout=10.0)
            done.append(job.procs)
            return _stub_result(job, options)

        service = SchedulingService(
            config=ServeConfig(max_backlog=8), runner=runner
        )
        try:
            reg = service.register_graph({"graph": _graph_doc()})
            fp = reg["fingerprint"]

            async def body():
                service.start()
                jobs = [
                    asyncio.ensure_future(
                        service.submit({"fingerprint": fp, "procs": p})
                    )
                    for p in (2, 3, 4)
                ]
                await asyncio.sleep(0.05)
                drainer = asyncio.ensure_future(service.drain())
                await asyncio.sleep(0.05)
                assert service.draining
                # New work is refused the moment draining begins...
                with pytest.raises(ShedError) as exc:
                    await service.submit({"fingerprint": fp, "procs": 5})
                assert "draining" in exc.value.reason
                # ...but everything already admitted runs to completion.
                gate.set()
                results = await asyncio.gather(*jobs)
                await asyncio.wait_for(drainer, timeout=10.0)
                return results

            results = asyncio.run(body())
            assert sorted(done) == [2, 3, 4]
            assert all(r["ok"] for r in results)
            assert service.registry.value("serve_draining") == 1.0
        finally:
            service.close()


class TestRouteLayer:
    """The HTTP surface without sockets: route() against a stub service."""

    def _service(self):
        return SchedulingService(
            config=ServeConfig(max_backlog=8), runner=_stub_result
        )

    def _route(self, service, method, path, payload=None):
        body = b"" if payload is None else json.dumps(payload).encode()
        return asyncio.run(route(service, method, path, body))

    def test_schedule_roundtrip_and_error_codes(self):
        service = self._service()
        try:
            doc = _graph_doc()
            resp = self._route(service, "POST", "/v1/graphs", {"graph": doc})
            assert resp.status == 200
            fp = json.loads(resp.body)["fingerprint"]

            async def body():
                service.start()
                ok = await route(
                    service, "POST", "/v1/schedule",
                    json.dumps({"fingerprint": fp, "procs": 4}).encode(),
                )
                await service.drain()
                return ok

            ok = asyncio.run(body())
            assert ok.status == 200
            assert json.loads(ok.body)["kernel"] == "array"
        finally:
            service.close()

    def test_shed_response_carries_retry_after_header(self):
        service = self._service()
        try:
            doc = _graph_doc()
            self._route(service, "POST", "/v1/graphs", {"graph": doc})
            fp = json.loads(
                self._route(
                    service, "POST", "/v1/graphs", {"graph": doc}
                ).body
            )["fingerprint"]

            async def body():
                await service.drain()  # no dispatchers started: immediate
                return await route(
                    service, "POST", "/v1/schedule",
                    json.dumps({"fingerprint": fp, "procs": 4}).encode(),
                )

            resp = asyncio.run(body())
            assert resp.status == 429
            headers = dict(resp.headers)
            assert int(headers["Retry-After"]) >= 1
            assert json.loads(resp.body)["retry_after"] >= 1
        finally:
            service.close()

    def test_unknown_fingerprint_404_bad_json_400_wrong_method_405(self):
        service = self._service()
        try:
            resp = asyncio.run(route(
                service, "POST", "/v1/schedule",
                json.dumps({"fingerprint": "nope", "procs": 2}).encode(),
            ))
            assert resp.status == 404
            assert self._route(service, "POST", "/v1/schedule").status == 400
            assert self._route(service, "GET", "/v1/schedule").status == 405
            assert self._route(service, "GET", "/no/such").status == 404
            bad = asyncio.run(route(service, "POST", "/v1/graphs", b"{oops"))
            assert bad.status == 400
        finally:
            service.close()

    def test_field_validation(self):
        service = self._service()
        try:
            fp = json.loads(self._route(
                service, "POST", "/v1/graphs", {"graph": _graph_doc()}
            ).body)["fingerprint"]
            for payload in (
                {"fingerprint": fp},                       # no procs
                {"fingerprint": fp, "procs": 0},
                {"fingerprint": fp, "procs": True},
                {"fingerprint": fp, "procs": 2, "tenant": ""},
                {"fingerprint": fp, "procs": 2, "kernel": "warp-drive"},
                {"fingerprint": fp, "graph": _graph_doc(), "procs": 2},
            ):
                resp = self._route(service, "POST", "/v1/schedule", payload)
                assert resp.status == 400, payload
        finally:
            service.close()

    def test_metrics_parse_roundtrip(self):
        service = self._service()
        try:
            self._route(service, "POST", "/v1/graphs", {"graph": _graph_doc()})
            resp = self._route(service, "GET", "/metrics")
            assert resp.status == 200
            assert resp.content_type.startswith("text/plain")
            families = parse_prometheus(resp.body.decode())
            assert any(name.startswith("repro_serve") for name in families)
        finally:
            service.close()

    def test_healthz_reports_drain_state(self):
        service = self._service()
        try:
            resp = self._route(service, "GET", "/healthz")
            assert json.loads(resp.body)["status"] == "ok"
            asyncio.run(service.drain())
            resp = self._route(service, "GET", "/healthz")
            assert json.loads(resp.body)["status"] == "draining"
        finally:
            service.close()


# -- end to end over localhost -----------------------------------------------

class TestHttpEndToEnd:
    def _post(self, base, path, payload):
        req = urllib.request.Request(
            base + path, data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"}, method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    def test_register_schedule_cache_metrics_drain(self):
        doc = _graph_doc()
        with BackgroundServer(ServeConfig(port=0)) as srv:
            base = f"http://{srv.host}:{srv.port}"
            status, reg = self._post(base, "/v1/graphs", {"graph": doc})
            assert status == 200 and reg["registered"]
            status, again = self._post(base, "/v1/graphs", {"graph": doc})
            assert status == 200 and not again["registered"]  # idempotent

            status, res = self._post(
                base, "/v1/schedule",
                {"fingerprint": reg["fingerprint"], "procs": 3},
            )
            assert status == 200 and res["ok"] and not res["cached"]
            assert res["makespan"] > 0 and res["kernel"] in (
                "object", "array", "numba",
            )
            status, hit = self._post(
                base, "/v1/schedule",
                {"fingerprint": reg["fingerprint"], "procs": 3},
            )
            assert status == 200 and hit["cached"]
            assert hit["makespan"] == res["makespan"]
            assert hit["kernel"] == res["kernel"]  # the cache cannot lie

            with urllib.request.urlopen(base + "/healthz", timeout=30) as r:
                health = json.loads(r.read())
            assert health["status"] == "ok" and health["graphs"] == 1

            with urllib.request.urlopen(base + "/metrics", timeout=30) as r:
                text = r.read().decode()
            families = parse_prometheus(text)
            assert any(n.startswith("repro_serve_requests") for n in families)
        # context exit == drain: reaching here means shutdown completed

    def test_unknown_fingerprint_over_http_is_404(self):
        with BackgroundServer(ServeConfig(port=0)) as srv:
            base = f"http://{srv.host}:{srv.port}"
            status, body = self._post(
                base, "/v1/schedule", {"fingerprint": "feedface", "procs": 2}
            )
            assert status == 404 and "feedface" in body["error"]
