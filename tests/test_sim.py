"""Tests for the discrete-event engine and the schedule executor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ScheduleError
from repro.graph import TaskGraph
from repro.machine import MachineModel
from repro.schedule import Schedule
from repro.schedulers import SCHEDULERS
from repro.sim import Simulator, execute, execute_perturbed
from repro.util.rng import make_rng
from repro.workloads import erdos_dag, fft, lu, paper_example, stencil


class TestSimulator:
    def test_ordering(self):
        sim = Simulator()
        log = []
        sim.at(3.0, lambda: log.append("c"))
        sim.at(1.0, lambda: log.append("a"))
        sim.at(2.0, lambda: log.append("b"))
        assert sim.run() == 3
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_priority_breaks_simultaneous_ties(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append("low"), priority=1)
        sim.at(1.0, lambda: log.append("high"), priority=0)
        sim.run()
        assert log == ["high", "low"]

    def test_insertion_order_for_equal_keys(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.at(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_callbacks_can_schedule(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.after(2.0, lambda: log.append(("second", sim.now)))

        sim.at(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 3.0)]

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(5.0, lambda: log.append(5))
        assert sim.run(until=2.0) == 1
        assert sim.pending == 1
        sim.run()
        assert log == [1, 5]

    def test_past_event_rejected(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.after(-1.0, lambda: None)


class TestExecute:
    @pytest.mark.parametrize("algo", sorted(SCHEDULERS))
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: paper_example(),
            lambda: lu(8, make_rng(0), ccr=2.0),
            lambda: stencil(6, 5, make_rng(1), ccr=0.2),
            lambda: fft(8, make_rng(2), ccr=5.0),
        ],
    )
    def test_replay_reproduces_schedule_exactly(self, algo, builder):
        """Every scheduler's claimed times must survive independent
        self-timed re-execution — the strongest cross-check in the suite."""
        g = builder()
        s = SCHEDULERS[algo](g, 3)
        result = execute(s)
        assert result.matches(s), result.mismatches(s)[:3]
        assert result.makespan == pytest.approx(s.makespan)

    def test_incomplete_schedule_rejected(self):
        g = paper_example()
        s = Schedule(g, MachineModel(2))
        s.place(0, 0, 0.0)
        with pytest.raises(ScheduleError):
            execute(s)

    def test_busy_time_accounting(self):
        g = paper_example()
        s = SCHEDULERS["flb"](g, 2)
        result = execute(s)
        assert sum(result.busy_time) == pytest.approx(g.total_comp())

    def test_deadlock_detection(self):
        # Hand-build a schedule whose per-proc sequences are circularly
        # dependent at execution time: a -> b (cross-proc), but b is ordered
        # before a's message can ever arrive AND c (before a on a's proc)
        # waits on b.  Construct: proc0: [b], proc1: [a]; edge a->b with b
        # placed legally per validate()? A valid schedule can't deadlock, so
        # we bypass place()-order legality by abusing timing: place b first
        # on p0 at 0 although its message arrives at 3 -> the *scheduler's
        # claim* is invalid, and execute() must still terminate, producing
        # times that differ (self-timed execution delays b, no deadlock).
        g = TaskGraph()
        a = g.add_task(1.0)
        b = g.add_task(1.0)
        g.add_edge(a, b, 2.0)
        g.freeze()
        s = Schedule(g, MachineModel(2))
        s.place(b, 0, 0.0)  # invalid claim (message not yet arrived)
        s.place(a, 1, 0.0)
        result = execute(s)
        # Self-timed execution fixes the start: b runs at 1 + 2 = 3.
        assert result.start[b] == pytest.approx(3.0)
        assert not result.matches(s)


class TestPerturbed:
    def test_zero_noise_is_exact(self):
        g = lu(8, make_rng(3), ccr=1.0)
        s = SCHEDULERS["flb"](g, 3)
        r = execute_perturbed(s, make_rng(0), comp_cv=0.0, comm_cv=0.0)
        assert r.matches(s)

    def test_noise_changes_makespan(self):
        g = lu(8, make_rng(4), ccr=1.0)
        s = SCHEDULERS["flb"](g, 3)
        r = execute_perturbed(s, make_rng(5), comp_cv=0.5, comm_cv=0.5)
        assert r.makespan != pytest.approx(s.makespan)
        # Execution is self-timed from the real weights: still dependency-safe.
        assert r.makespan > 0

    def test_deterministic_given_rng(self):
        g = lu(8, make_rng(6), ccr=1.0)
        s = SCHEDULERS["flb"](g, 3)
        r1 = execute_perturbed(s, make_rng(7), 0.3, 0.3)
        r2 = execute_perturbed(s, make_rng(7), 0.3, 0.3)
        assert r1.makespan == r2.makespan

    def test_rejects_negative_cv(self):
        g = paper_example()
        s = SCHEDULERS["flb"](g, 2)
        with pytest.raises(ValueError):
            execute_perturbed(s, make_rng(0), comp_cv=-0.1)

    def test_mean_preserving_noise(self):
        # Across many draws, perturbed makespans should straddle the
        # noise-free makespan (lognormal factors have mean exactly 1).
        g = stencil(6, 6, make_rng(8), ccr=0.5)
        s = SCHEDULERS["flb"](g, 3)
        spans = [
            execute_perturbed(s, make_rng(100 + i), 0.3, 0.3).makespan
            for i in range(30)
        ]
        mean = sum(spans) / len(spans)
        assert mean == pytest.approx(s.makespan, rel=0.25)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 25),
    p=st.floats(0.0, 0.5),
    procs=st.integers(1, 5),
    seed=st.integers(0, 3000),
)
def test_property_flb_replay_exact_on_random_dags(n, p, procs, seed):
    g = erdos_dag(n, p, make_rng(seed), ccr=1.5)
    s = SCHEDULERS["flb"](g, procs)
    assert execute(s).matches(s)
