"""Tests for the SVG Gantt renderer."""

import xml.dom.minidom

import pytest

from repro.core import flb
from repro.schedule import render_gantt_svg, save_gantt_svg
from repro.schedulers import mcp_insertion
from repro.util.rng import make_rng
from repro.workloads import independent_tasks, lu, paper_example


def svg_for(graph, procs=2):
    return render_gantt_svg(flb(graph, procs))


class TestSvgGantt:
    def test_well_formed_xml(self):
        doc = xml.dom.minidom.parseString(svg_for(paper_example()))
        assert doc.documentElement.tagName == "svg"

    def test_one_rect_per_task_plus_lanes(self):
        g = paper_example()
        svg = svg_for(g)
        doc = xml.dom.minidom.parseString(svg)
        rects = doc.getElementsByTagName("rect")
        # background + 2 lanes + 8 tasks
        assert len(rects) == 1 + 2 + g.num_tasks

    def test_tooltips_carry_times(self):
        svg = svg_for(paper_example())
        assert "<title>t0: [0, 2) on P0" in svg
        assert "t7: [12, 14) on P0" in svg

    def test_critical_tasks_highlighted(self):
        svg = svg_for(paper_example())
        assert "(critical)" in svg
        assert "#c0392b" in svg

    def test_highlight_disabled(self):
        s = flb(paper_example(), 2)
        svg = render_gantt_svg(s, highlight_critical=False)
        assert "(critical)" not in svg

    def test_escapes_names(self):
        from repro.graph import TaskGraph

        g = TaskGraph()
        g.add_task(1.0, name="a<b&c")
        g.freeze()
        svg = render_gantt_svg(flb(g, 1))
        assert "a&lt;b&amp;c" in svg
        xml.dom.minidom.parseString(svg)

    def test_inserted_schedule_renders(self):
        g = lu(7, make_rng(0), ccr=5.0)
        svg = render_gantt_svg(mcp_insertion(g, 3))
        xml.dom.minidom.parseString(svg)

    def test_width_validation(self):
        s = flb(paper_example(), 2)
        with pytest.raises(ValueError):
            render_gantt_svg(s, width=50)

    def test_save(self, tmp_path):
        s = flb(independent_tasks(4), 2)
        path = tmp_path / "gantt.svg"
        save_gantt_svg(s, path, width=400)
        assert path.read_text().startswith("<svg")

    def test_axis_labels_present(self):
        s = flb(paper_example(), 2)
        svg = render_gantt_svg(s)
        assert ">14<" in svg  # makespan tick
        assert ">0<" in svg
