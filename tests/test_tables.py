"""Tests for the text table/chart renderers."""


import pytest

from repro.util.tables import (
    format_bar_chart,
    format_float,
    format_series_chart,
    format_table,
)


class TestFormatFloat:
    def test_integers_drop_fraction(self):
        assert format_float(3.0) == "3"
        assert format_float(-7.0) == "-7"

    def test_fixed_digits(self):
        assert format_float(3.14159, digits=2) == "3.14"
        assert format_float(3.14159) == "3.142"

    def test_nan_and_none(self):
        assert format_float(float("nan")) == "-"
        assert format_float(None) == "-"


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 22.25]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        # Right-aligned numeric column at 3 fixed digits.
        assert lines[3].rstrip().endswith("1.500")
        assert lines[4].rstrip().endswith("22.250")

    def test_mixed_cell_types(self):
        text = format_table(["a", "b"], [[1, "x"], [2.5, None]])
        assert "2.5" in text
        assert "None" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_explicit_alignment(self):
        text = format_table(["a", "b"], [["xx", "yy"]], align=["r", "l"])
        assert "xx" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestSeriesChart:
    def test_contains_markers_and_legend(self):
        text = format_series_chart(
            [1, 2, 4], {"flb": [1.0, 2.0, 4.0], "etf": [1.0, 1.5, 2.0]},
            title="t", x_label="P",
        )
        assert "legend:" in text
        assert "o=flb" in text
        assert "x=etf" in text
        assert "o" in text.splitlines()[1:][0] or any(
            "o" in line for line in text.splitlines()
        )

    def test_constant_series_does_not_crash(self):
        text = format_series_chart([1, 2], {"s": [5.0, 5.0]})
        assert "s" in text

    def test_single_point(self):
        text = format_series_chart([3], {"s": [1.0]})
        assert "legend" in text

    def test_none_values_skipped(self):
        text = format_series_chart([1, 2, 3], {"s": [1.0, None, 3.0]})
        assert "legend" in text

    def test_empty_series(self):
        assert format_series_chart([1], {}, title="empty") == "empty"
        assert format_series_chart([1], {"s": []}, title="empty") == "empty"

    def test_y_label_rendered(self):
        text = format_series_chart([1, 2], {"s": [1.0, 2.0]}, y_label="speedup")
        assert "speedup" in text


class TestBarChart:
    def test_bars_proportional(self):
        text = format_bar_chart(["a", "bb"], [1.0, 2.0], title="bars", width=10)
        lines = text.splitlines()
        assert lines[0] == "bars"
        a_hashes = lines[1].count("#")
        b_hashes = lines[2].count("#")
        assert b_hashes == 10
        assert a_hashes == 5

    def test_zero_values(self):
        text = format_bar_chart(["a"], [0.0])
        assert "#" not in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            format_bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert format_bar_chart([], [], title="t") == "t"
