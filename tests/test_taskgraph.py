"""Tests for the TaskGraph model."""

import pytest

from repro.exceptions import CycleError, FrozenGraphError, GraphError
from repro.graph import TaskGraph


def diamond() -> TaskGraph:
    """a -> {b, c} -> d."""
    g = TaskGraph()
    a = g.add_task(1.0, name="a")
    b = g.add_task(2.0, name="b")
    c = g.add_task(3.0, name="c")
    d = g.add_task(4.0, name="d")
    g.add_edge(a, b, 1.0)
    g.add_edge(a, c, 2.0)
    g.add_edge(b, d, 3.0)
    g.add_edge(c, d, 4.0)
    return g


class TestConstruction:
    def test_add_task_returns_dense_ids(self):
        g = TaskGraph()
        assert [g.add_task(1.0) for _ in range(4)] == [0, 1, 2, 3]
        assert g.num_tasks == 4

    def test_add_tasks_bulk(self):
        g = TaskGraph()
        assert g.add_tasks([1.0, 2.0, 3.0]) == [0, 1, 2]
        assert g.comps == (1.0, 2.0, 3.0)

    def test_add_tasks_with_names(self):
        g = TaskGraph()
        ids = g.add_tasks([1.0, 2.0], names=["load", "solve"])
        assert [g.name(t) for t in ids] == ["load", "solve"]

    def test_add_tasks_names_length_mismatch(self):
        g = TaskGraph()
        with pytest.raises(GraphError):
            g.add_tasks([1.0, 2.0], names=["only-one"])
        assert g.num_tasks == 0  # a rejected bulk add must not half-apply

    def test_add_tasks_names_accepts_lazy_iterables(self):
        g = TaskGraph()
        ids = g.add_tasks(iter([1.0, 2.0, 3.0]), names=(f"t{i}" for i in range(3)))
        assert [g.name(t) for t in ids] == ["t0", "t1", "t2"]

    def test_comp_must_be_positive(self):
        g = TaskGraph()
        with pytest.raises(GraphError):
            g.add_task(0.0)
        with pytest.raises(GraphError):
            g.add_task(-1.0)

    def test_comm_must_be_nonnegative(self):
        g = TaskGraph()
        a, b = g.add_task(1.0), g.add_task(1.0)
        g.add_edge(a, b, 0.0)  # zero comm is allowed
        with pytest.raises(GraphError):
            g.add_edge(b, a, -0.5)

    def test_self_loop_rejected(self):
        g = TaskGraph()
        a = g.add_task(1.0)
        with pytest.raises(GraphError):
            g.add_edge(a, a, 1.0)

    def test_duplicate_edge_rejected(self):
        g = TaskGraph()
        a, b = g.add_task(1.0), g.add_task(1.0)
        g.add_edge(a, b, 1.0)
        with pytest.raises(GraphError):
            g.add_edge(a, b, 2.0)

    def test_unknown_task_rejected(self):
        g = TaskGraph()
        a = g.add_task(1.0)
        with pytest.raises(GraphError):
            g.add_edge(a, 5, 1.0)

    def test_names(self):
        g = TaskGraph()
        a = g.add_task(1.0, name="alpha")
        b = g.add_task(1.0)
        assert g.name(a) == "alpha"
        assert g.name(b) == "t1"
        g.set_name(b, "beta")
        assert g.name(b) == "beta"


class TestFreeze:
    def test_freeze_idempotent(self):
        g = diamond()
        assert g.freeze() is g
        assert g.freeze() is g
        assert g.frozen

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph().freeze()

    def test_cycle_detected(self):
        g = TaskGraph()
        a, b, c = g.add_task(1.0), g.add_task(1.0), g.add_task(1.0)
        g.add_edge(a, b)
        g.add_edge(b, c)
        g.add_edge(c, a)
        with pytest.raises(CycleError):
            g.freeze()

    def test_mutation_after_freeze_rejected(self):
        g = diamond().freeze()
        with pytest.raises(FrozenGraphError):
            g.add_task(1.0)
        with pytest.raises(FrozenGraphError):
            g.add_edge(0, 3, 1.0)
        with pytest.raises(FrozenGraphError):
            g.set_name(0, "x")

    def test_adjacency_requires_freeze(self):
        g = diamond()
        with pytest.raises(GraphError):
            g.succs(0)
        g.freeze()
        assert g.succs(0) == (1, 2)
        assert g.preds(3) == (1, 2)

    def test_topological_order_valid(self):
        g = diamond().freeze()
        order = g.topological_order
        pos = {t: i for i, t in enumerate(order)}
        for src, dst, _ in g.edges():
            assert pos[src] < pos[dst]

    def test_entry_exit(self):
        g = diamond().freeze()
        assert g.entry_tasks == (0,)
        assert g.exit_tasks == (3,)

    def test_isolated_task_is_entry_and_exit(self):
        g = TaskGraph()
        g.add_task(1.0)
        g.freeze()
        assert g.entry_tasks == (0,)
        assert g.exit_tasks == (0,)


class TestQueries:
    def test_degrees(self):
        g = diamond().freeze()
        assert g.in_degree(0) == 0
        assert g.out_degree(0) == 2
        assert g.in_degree(3) == 2
        assert g.out_degree(3) == 0

    def test_edges_iteration(self):
        g = diamond().freeze()
        edges = set((s, d, c) for s, d, c in g.edges())
        assert edges == {(0, 1, 1.0), (0, 2, 2.0), (1, 3, 3.0), (2, 3, 4.0)}
        assert g.num_edges == 4

    def test_comm_lookup(self):
        g = diamond().freeze()
        assert g.comm(0, 2) == 2.0
        assert g.has_edge(0, 2)
        assert not g.has_edge(2, 0)
        with pytest.raises(KeyError):
            g.comm(2, 0)

    def test_totals(self):
        g = diamond()
        assert g.total_comp() == 10.0
        assert g.total_comm() == 10.0

    def test_repr(self):
        g = diamond()
        assert "V=4" in repr(g) and "building" in repr(g)
        g.freeze()
        assert "frozen" in repr(g)


class TestCopyRelabel:
    def test_copy_frozen(self):
        g = diamond().freeze()
        g2 = g.copy()
        assert g2.frozen
        assert g2.num_tasks == g.num_tasks
        assert set(g2.edges()) == set(g.edges())

    def test_copy_mutable(self):
        g = diamond().freeze()
        g2 = g.copy(mutable=True)
        assert not g2.frozen
        g2.add_task(5.0)
        assert g2.num_tasks == 5
        assert g.num_tasks == 4

    def test_relabeled_preserves_structure(self):
        g = diamond().freeze()
        perm = [3, 1, 0, 2]  # old id -> new id
        g2 = g.relabeled(perm)
        assert g2.num_tasks == 4
        assert g2.comp(perm[0]) == g.comp(0)
        for src, dst, comm in g.edges():
            assert g2.comm(perm[src], perm[dst]) == comm

    def test_relabeled_rejects_non_permutation(self):
        g = diamond().freeze()
        with pytest.raises(GraphError):
            g.relabeled([0, 0, 1, 2])


class TestCsr:
    def test_requires_freeze(self):
        g = diamond()
        with pytest.raises(GraphError):
            g.csr()

    def test_matches_dict_adjacency(self):
        g = diamond().freeze()
        csr = g.csr()
        assert len(csr.pred_ptr) == g.num_tasks + 1
        assert csr.pred_ptr[0] == 0 and csr.pred_ptr[-1] == g.num_edges
        assert len(csr.succ_ids) == len(csr.succ_comm) == g.num_edges
        for t in g.tasks():
            lo, hi = csr.pred_ptr[t], csr.pred_ptr[t + 1]
            assert tuple(csr.pred_ids[lo:hi]) == g.preds(t)
            assert list(csr.pred_comm[lo:hi]) == [
                g.comm(p, t) for p in g.preds(t)
            ]
            lo, hi = csr.succ_ptr[t], csr.succ_ptr[t + 1]
            assert tuple(csr.succ_ids[lo:hi]) == g.succs(t)
            assert list(csr.succ_comm[lo:hi]) == [
                g.comm(t, s) for s in g.succs(t)
            ]

    def test_in_degrees(self):
        g = diamond().freeze()
        assert g.csr().in_degrees() == [g.in_degree(t) for t in g.tasks()]

    def test_matches_on_random_graph(self):
        from repro.util.rng import make_rng
        from repro.workloads import layered_random

        g = layered_random(5, 6, make_rng(11), edge_density=0.4, ccr=1.0)
        g.freeze()
        csr = g.csr()
        for t in g.tasks():
            lo, hi = csr.pred_ptr[t], csr.pred_ptr[t + 1]
            assert tuple(csr.pred_ids[lo:hi]) == g.preds(t)

    def test_copy_recompiles(self):
        g = diamond().freeze()
        g2 = g.copy(mutable=True)
        e = g2.add_task(9.0, name="e")
        g2.add_edge(3, e, 1.5)
        g2.freeze()
        csr = g2.csr()
        lo, hi = csr.pred_ptr[e], csr.pred_ptr[e + 1]
        assert tuple(csr.pred_ids[lo:hi]) == (3,)
        assert csr.pred_comm[lo] == 1.5
