"""File-descriptor hygiene for the supervised worker pool.

Every worker holds a duplex :class:`multiprocessing.Pipe` (two fds on the
supervisor side until ``spawn`` closes the child end) plus the process
sentinel.  Kill-and-replace cycles — timeout SIGKILLs and crashed workers —
must release all of them deterministically (``conn.close()`` +
``Process.close()``), not whenever the GC gets around to it: a long-lived
:class:`~repro.batch.BatchScheduler` serving loop would otherwise creep
toward ``EMFILE``.
"""

import os
import time

import pytest

from repro.workerpool import run_supervised

_FD_DIR = "/proc/self/fd"

pytestmark = pytest.mark.skipif(
    not os.path.isdir(_FD_DIR), reason="requires /proc/self/fd (Linux)"
)


def _open_fds():
    return len(os.listdir(_FD_DIR))


def _square(x):
    return x * x


def _exit_hard(x):
    os._exit(2)  # simulates a crashed worker: no cleanup, no exception


def _sleep_forever(x):
    time.sleep(30.0)


def _settled_fd_count():
    # First pool use spins up lasting machinery (resource tracker, etc.);
    # run once so the baseline reflects steady state, then read the count.
    run_supervised([1, 2], _square, workers=2)
    return _open_fds()


def test_fd_count_stable_across_healthy_runs():
    baseline = _settled_fd_count()
    for _ in range(5):
        outcomes = run_supervised([1, 2, 3], _square, workers=2)
        assert all(o.completed for o in outcomes)
    assert _open_fds() <= baseline


def test_fd_count_stable_across_worker_deaths():
    baseline = _settled_fd_count()
    # 6 runs x (2 dead workers + replacements) and not one fd of growth.
    for _ in range(6):
        outcomes = run_supervised(
            [1, 2], _exit_hard, workers=2, retries=0,
        )
        assert all(o.kind == "died" for o in outcomes)
    assert _open_fds() <= baseline


def test_fd_count_stable_across_timeout_kills():
    baseline = _settled_fd_count()
    for _ in range(3):
        outcomes = run_supervised(
            [1.0], _sleep_forever, workers=1, timeout=0.2, grace=0.5,
        )
        assert outcomes[0].kind == "timeout"
    assert _open_fds() <= baseline


def test_fd_count_stable_with_retries():
    baseline = _settled_fd_count()
    for _ in range(3):
        outcomes = run_supervised(
            [1], _exit_hard, workers=1, retries=2, backoff=0.01,
        )
        assert outcomes[0].kind == "died" and outcomes[0].attempts == 3
    assert _open_fds() <= baseline
