"""Tests for workload generators: structure, sizes, weights, CCR."""

import pytest

from repro.graph import ccr as graph_ccr
from repro.graph import parallelism_profile, width
from repro.util.rng import make_rng
from repro.workloads import (
    chain,
    cholesky,
    cholesky_size_for_tasks,
    erdos_dag,
    fft,
    fft_size_for_tasks,
    fork_join,
    in_tree,
    independent_tasks,
    laplace,
    laplace_size_for_tasks,
    layered_random,
    lu,
    lu_chain,
    lu_size_for_tasks,
    out_tree,
    paper_example,
    series_parallel,
    simple_diamond,
    stencil,
    stencil_size_for_tasks,
    two_chains,
)

ALL_GENERATORS = [
    ("lu", lambda rng: lu(8, rng)),
    ("laplace", lambda rng: laplace(4, 3, rng)),
    ("stencil", lambda rng: stencil(5, 4, rng)),
    ("fft", lambda rng: fft(8, rng)),
    ("cholesky", lambda rng: cholesky(4, rng)),
    ("lu_chain", lambda rng: lu_chain(6, rng)),
    ("layered", lambda rng: layered_random(4, 4, rng)),
    ("erdos", lambda rng: erdos_dag(20, 0.2, rng)),
    ("fork_join", lambda rng: fork_join(3, 4, rng)),
    ("out_tree", lambda rng: out_tree(3, 2, rng)),
    ("in_tree", lambda rng: in_tree(3, 2, rng)),
    ("chain", lambda rng: chain(10, rng)),
    ("series_parallel", lambda rng: series_parallel(10, rng)),
]


@pytest.mark.parametrize("name,builder", ALL_GENERATORS)
class TestCommonGeneratorProperties:
    def test_frozen_dag(self, name, builder):
        g = builder(make_rng(0))
        assert g.frozen
        assert g.num_tasks >= 1

    def test_deterministic_given_seed(self, name, builder):
        g1 = builder(make_rng(42))
        g2 = builder(make_rng(42))
        assert g1.comps == g2.comps
        assert set(g1.edges()) == set(g2.edges())

    def test_positive_weights(self, name, builder):
        g = builder(make_rng(1))
        assert all(g.comp(t) > 0 for t in g.tasks())
        assert all(c >= 0 for _, _, c in g.edges())

    def test_deterministic_without_rng(self, name, builder):
        g = builder(None)
        assert all(g.comp(t) == 1.0 for t in g.tasks())


class TestLu:
    def test_size_formula(self):
        for n in (2, 5, 10):
            g = lu(n)
            assert g.num_tasks == (n - 1) + n * (n - 1) // 2

    def test_width(self):
        assert width(lu(6)) == 5  # W = n - 1

    def test_structure_small(self):
        g = lu(3)
        # pivot[0], upd[0][1], upd[0][2], pivot[1], upd[1][2]
        assert g.num_tasks == 5
        names = {g.name(t): t for t in g.tasks()}
        assert g.has_edge(names["pivot[0]"], names["upd[0][1]"])
        assert g.has_edge(names["pivot[0]"], names["upd[0][2]"])
        # Join-style: the next pivot joins ALL of the step's updates.
        assert g.has_edge(names["upd[0][1]"], names["pivot[1]"])
        assert g.has_edge(names["upd[0][2]"], names["pivot[1]"])
        assert g.has_edge(names["pivot[1]"], names["upd[1][2]"])

    def test_join_degree(self):
        g = lu(5)
        names = {g.name(t): t for t in g.tasks()}
        assert g.in_degree(names["pivot[1]"]) == 4  # joins upd[0][1..4]

    def test_size_for_tasks(self):
        n = lu_size_for_tasks(2000)
        assert lu(n).num_tasks >= 2000
        assert lu(n - 1).num_tasks < 2000

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            lu(1)


class TestLaplace:
    def test_size(self):
        assert laplace(4, 5).num_tasks == 80

    def test_interior_join_degree(self):
        g = laplace(3, 2)
        # Centre cell of layer 1 joins 5 predecessors.
        centre = 9 + 4  # layer 1, cell (1,1)
        assert g.in_degree(centre) == 5

    def test_profile_is_layered(self):
        assert parallelism_profile(laplace(3, 4)) == [9, 9, 9, 9]

    def test_size_for_tasks(self):
        grid, iters = laplace_size_for_tasks(2000)
        assert grid * grid * iters >= 2000

    def test_rejects_bad(self):
        with pytest.raises(ValueError):
            laplace(0, 1)


class TestStencil:
    def test_size(self):
        assert stencil(6, 7).num_tasks == 42

    def test_boundary_degree(self):
        g = stencil(5, 2)
        assert g.in_degree(5) == 2  # edge cell: self + right neighbour
        assert g.in_degree(7) == 3  # interior: three-point stencil

    def test_width(self):
        assert width(stencil(7, 4)) == 7

    def test_size_for_tasks(self):
        cells, steps = stencil_size_for_tasks(2000)
        assert cells * steps >= 2000


class TestFft:
    def test_size(self):
        assert fft(8).num_tasks == 8 * 4

    def test_butterfly_edges(self):
        g = fft(4)
        # stage 1, task 0 depends on stage 0 tasks 0 and 1.
        assert g.has_edge(0, 4)
        assert g.has_edge(1, 4)
        # stage 2, task 0 depends on stage 1 tasks 0 and 2.
        assert g.has_edge(4, 8)
        assert g.has_edge(6, 8)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fft(6)
        with pytest.raises(ValueError):
            fft(1)

    def test_size_for_tasks(self):
        points = fft_size_for_tasks(2000)
        assert fft(points).num_tasks >= 2000


class TestCholesky:
    def test_counts(self):
        g = cholesky(3)
        # potrf x3, trsm: (2 + 1), upd: k=0 -> (1,1),(2,1),(2,2); k=1 -> (2,2)
        assert g.num_tasks == 3 + 3 + 4

    def test_chain_of_potrfs(self):
        g = cholesky(4)
        names = {g.name(t): t for t in g.tasks()}
        assert g.has_edge(names["upd[0][1][1]"], names["potrf[1]"])
        assert g.has_edge(names["potrf[0]"], names["trsm[0][2]"])
        assert g.has_edge(names["trsm[0][2]"], names["upd[0][2][1]"])

    def test_size_for_tasks(self):
        n = cholesky_size_for_tasks(500)
        assert cholesky(n).num_tasks >= 500


class TestLuChain:
    def test_chain_structure(self):
        g = lu_chain(4)
        names = {g.name(t): t for t in g.tasks()}
        # Column updates chain down; only upd[k][k+1] feeds the next pivot.
        assert g.has_edge(names["upd[0][1]"], names["pivot[1]"])
        assert not g.has_edge(names["upd[0][2]"], names["pivot[1]"])
        assert g.has_edge(names["upd[0][2]"], names["upd[1][2]"])

    def test_same_size_as_join_variant(self):
        assert lu_chain(9).num_tasks == lu(9).num_tasks


class TestRandomFamilies:
    def test_layered_guarantees_connectivity(self):
        g = layered_random(5, 6, make_rng(0), edge_density=0.01)
        for t in g.tasks():
            if t >= 6:  # non-first layer
                assert g.in_degree(t) >= 1

    def test_layered_density_one_is_complete_bipartite(self):
        g = layered_random(3, 4, make_rng(0), edge_density=1.0)
        assert g.num_edges == 2 * 16

    def test_erdos_p_zero_no_edges(self):
        assert erdos_dag(10, 0.0, make_rng(0)).num_edges == 0

    def test_erdos_p_one_complete(self):
        assert erdos_dag(6, 1.0, make_rng(0)).num_edges == 15

    def test_fork_join_shape(self):
        g = fork_join(2, 3)
        assert g.num_tasks == 2 * 5
        assert width(g) == 3

    def test_trees(self):
        assert out_tree(2, 2).num_tasks == 7
        g = in_tree(2, 2)
        assert g.num_tasks == 7
        assert len(g.exit_tasks) == 1
        assert len(g.entry_tasks) == 4

    def test_chain_and_independent(self):
        assert width(chain(5)) == 1
        assert width(independent_tasks(7)) == 7

    def test_series_parallel_single_entry_exit(self):
        g = series_parallel(12, make_rng(3))
        assert len(g.entry_tasks) == 1
        assert len(g.exit_tasks) == 1

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            layered_random(0, 3)
        with pytest.raises(ValueError):
            layered_random(2, 2, edge_density=1.5)
        with pytest.raises(ValueError):
            erdos_dag(5, -0.1)
        with pytest.raises(ValueError):
            chain(0)
        with pytest.raises(ValueError):
            independent_tasks(0)
        with pytest.raises(ValueError):
            series_parallel(0)
        with pytest.raises(ValueError):
            fork_join(0, 1)
        with pytest.raises(ValueError):
            out_tree(-1)


class TestGallery:
    def test_paper_example_shape(self):
        g = paper_example()
        assert g.num_tasks == 8
        assert g.num_edges == 10
        assert g.entry_tasks == (0,)
        assert g.exit_tasks == (7,)
        assert g.comps == (2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 2.0, 2.0)
        assert g.comm(0, 2) == 4.0
        assert g.comm(5, 7) == 3.0

    def test_fixtures(self):
        assert simple_diamond().num_tasks == 4
        g = two_chains()
        assert len(g.entry_tasks) == 2
        assert len(g.exit_tasks) == 2


class TestCcrControl:
    @pytest.mark.parametrize("target", [0.2, 5.0])
    def test_paper_ccr_values(self, target):
        for builder in (
            lambda: lu(10, make_rng(0), ccr=target),
            lambda: laplace(4, 4, make_rng(0), ccr=target),
            lambda: stencil(6, 6, make_rng(0), ccr=target),
            lambda: fft(16, make_rng(0), ccr=target),
        ):
            g = builder()
            assert graph_ccr(g) == pytest.approx(target, rel=1e-9)

    def test_distribution_flag(self):
        g = lu(10, make_rng(0), distribution="exponential")
        assert g.num_tasks == lu(10).num_tasks
        with pytest.raises(ValueError):
            lu(10, make_rng(0), distribution="bogus")


class TestWavefront:
    def test_size_and_width(self):
        from repro.graph import width
        from repro.workloads import wavefront

        g = wavefront(5)
        assert g.num_tasks == 25
        assert width(g) == 5

    def test_diamond_dependencies(self):
        from repro.workloads import wavefront

        g = wavefront(3)
        # cell(1,1) = id 4 depends on cell(0,1) = 1 and cell(1,0) = 3.
        assert g.in_degree(4) == 2
        assert g.has_edge(1, 4)
        assert g.has_edge(3, 4)
        assert g.entry_tasks == (0,)
        assert g.exit_tasks == (8,)

    def test_parallelism_profile_is_diamond(self):
        from repro.graph import parallelism_profile
        from repro.workloads import wavefront

        assert parallelism_profile(wavefront(4)) == [1, 2, 3, 4, 3, 2, 1]

    def test_size_for_tasks(self):
        from repro.workloads import wavefront, wavefront_size_for_tasks

        n = wavefront_size_for_tasks(50)
        assert wavefront(n).num_tasks >= 50

    def test_rejects_bad(self):
        from repro.workloads import wavefront

        with pytest.raises(ValueError):
            wavefront(0)

    def test_schedulable(self):
        from repro.schedulers import SCHEDULERS
        from repro.workloads import wavefront

        g = wavefront(6, make_rng(0), ccr=2.0)
        for algo in ("flb", "mcp", "dsc-llb"):
            s = SCHEDULERS[algo](g, 4)
            assert s.violations() == []
