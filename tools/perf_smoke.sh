#!/bin/sh
# Fast-path performance smoke: the perfgate-marked checks plus a small gate
# run against the stored baseline.  Designed to finish in well under a
# minute; see docs/performance.md and ROADMAP.md (tier-1).
#
# Usage: tools/perf_smoke.sh          (from the repo root)
set -eu
cd "$(dirname "$0")/.."
export PYTHONPATH=src

# Equivalence + 2x-over-seed floor at smoke scale (REPRO_BENCH_TASKS=300),
# plus the batch graph-plane floors: keyed dispatch >= inline throughput with
# bit-identical summaries, and keyed+cache serving >= 2x the inline path.
python -m pytest -m perfgate -q benchmarks/bench_throughput.py tests/test_perf_gate.py \
    tests/test_batch_graphplane.py -p no:cacheprovider

# Throughput gate at smoke scale against the stored full-scale baseline.
# Smoke graphs are ~7x smaller than the baseline's, so per-task overheads
# differ; a generous tolerance catches collapses, not noise.  --no-write
# keeps BENCH_sched.json recording full-scale numbers only.
python benchmarks/perf_gate.py --tasks 300 --seeds 1 --repeats 1 --no-seed \
    --tolerance 0.6 --no-write

echo "perf smoke OK"
