#!/bin/sh
# Fast-path performance smoke: the perfgate-marked checks plus a small gate
# run against the stored baseline.  Designed to finish in well under a
# minute; see docs/performance.md and ROADMAP.md (tier-1).
#
# Usage: tools/perf_smoke.sh          (from the repo root)
set -eu
cd "$(dirname "$0")/.."
export PYTHONPATH=src

# Equivalence + 2x-over-seed floor at smoke scale (REPRO_BENCH_TASKS=300),
# plus the batch graph-plane floors: keyed dispatch >= inline throughput with
# bit-identical summaries, and keyed+cache serving >= 2x the inline path,
# plus the observability budget: metrics-enabled runs within 5% of disabled,
# plus the warm-start floor: incremental rescheduling of a 10^5-task graph
# with <= 1% mutated >= 5x faster than cold, bit-identical and certified.
python -m pytest -m perfgate -q benchmarks/bench_throughput.py tests/test_perf_gate.py \
    tests/test_batch_graphplane.py tests/test_obs_overhead.py \
    benchmarks/bench_incremental.py -p no:cacheprovider

# Throughput gate at smoke scale against the stored full-scale baseline.
# Smoke graphs are ~7x smaller than the baseline's, so per-task overheads
# differ; a generous tolerance catches collapses, not noise.  --no-write
# keeps BENCH_sched.json recording full-scale numbers only.
python benchmarks/perf_gate.py --tasks 300 --seeds 1 --repeats 1 --no-seed \
    --tolerance 0.6 --no-write

# Optional verification pass (REPRO_SMOKE_CERTIFY=1): lint the smoke
# workloads and re-certify the fast path's schedules against the
# independent checker (repro.verify) before trusting the numbers above.
if [ "${REPRO_SMOKE_CERTIFY:-0}" = "1" ]; then
    for prob in lu fft stencil; do
        python -m repro.cli lint --problem "$prob" --tasks 300
        python -m repro.cli certify --problem "$prob" --tasks 300 \
            --procs 8 --algo flb
    done
    # Speed-scaled machine through the F003 replay certificate: a
    # related-machines HEFT run must certify on a 4x-skew model.
    python -m repro.cli certify --problem lu --tasks 300 \
        --procs 4 --algo heft --speeds 4.0 2.0 1.0 1.0 --comm-scale 2.0
    echo "perf smoke certification OK"
fi

# Metrics-enabled batch through the CLI: the emitted Prometheus text and
# JSONL trace must be well-formed (parse_prometheus/read_trace raise on any
# malformed output), and the trace must render through `repro-sched report`.
# Artifacts land in results/ so CI can upload them.
mkdir -p results
python -m repro.cli batch --problems lu stencil --procs 4 8 --algos flb fcp \
    --tasks 300 --workers 2 \
    --metrics-out results/metrics.prom --trace-out results/trace.jsonl
python - <<'EOF'
from repro.obs import parse_prometheus, read_trace

samples = parse_prometheus(open("results/metrics.prom").read())
assert samples.get('repro_batch_jobs_total{status="ok"}', 0) >= 8, samples
events = read_trace("results/trace.jsonl")
jobs = [e for e in events if e["name"] == "batch.job"]
assert len(jobs) >= 8, len(jobs)
for e in jobs:
    a = e["attrs"]
    drift = abs(sum(a["phases"].values()) - a["wall"])
    assert drift < 1e-6, (a["tag"], drift)
print(f"observability smoke OK: {len(samples)} samples, {len(jobs)} job events")
EOF
python -m repro.cli report results/trace.jsonl > /dev/null

# Serving front-end over real sockets: register/schedule by fingerprint,
# coalescing, 429 shedding, metrics scrape, SIGTERM drain.
tools/serve_smoke.sh

echo "perf smoke OK"
