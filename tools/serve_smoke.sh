#!/bin/sh
# Serving smoke: boot the real HTTP front-end (`repro-sched serve`) on an
# ephemeral port and exercise the whole contract over actual sockets:
#
#   * register a generated graph, then schedule it by fingerprint;
#   * N identical concurrent requests collapse to ONE computation
#     (in-flight coalescing + result cache — every response agrees on the
#     kernel that actually ran);
#   * a burst past --max-backlog is shed fast with 429 + Retry-After;
#   * /metrics parses through repro.obs.parse_prometheus and carries the
#     serve_* family;
#   * SIGTERM drains gracefully (exit 0, "drained" in the log).
#
# Usage: tools/serve_smoke.sh          (from the repo root)
set -eu
cd "$(dirname "$0")/.."
export PYTHONPATH=src

mkdir -p results
LOG=results/serve_smoke.log

python -m repro.cli generate --problem lu --tasks 2000 -o results/serve_graph.json

python -u -m repro.cli serve --port 0 --max-backlog 2 >"$LOG" 2>&1 &
SERVER_PID=$!
trap 'kill -9 "$SERVER_PID" 2>/dev/null || true' EXIT

# The server prints "serving on HOST:PORT" once the socket is bound; with
# --port 0 the OS picks the port, so scrape it from the log.
PORT=""
i=0
while [ $i -lt 100 ]; do
    PORT=$(sed -n 's/^serving on .*:\([0-9][0-9]*\)$/\1/p' "$LOG")
    [ -n "$PORT" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died early:"; cat "$LOG"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$PORT" ] || { echo "server never reported its port:"; cat "$LOG"; exit 1; }

SERVE_PORT="$PORT" python - <<'EOF'
import concurrent.futures
import json
import os
import urllib.error
import urllib.request

from repro.obs import parse_prometheus

base = f"http://127.0.0.1:{os.environ['SERVE_PORT']}"


def post(path, payload):
    req = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)


# -- register + schedule by fingerprint --------------------------------------
doc = json.load(open("results/serve_graph.json"))
status, reg, _ = post("/v1/graphs", {"graph": doc})
assert status == 200, reg
fp = reg["fingerprint"]

status, body, _ = post("/v1/schedule", {"fingerprint": fp, "procs": 4})
assert status == 200, body
assert body["makespan"] > 0 and body["kernel"], body

# -- coalescing: N identical concurrent requests, ONE computation ------------
# The first in-flight request computes; overlapping duplicates attach to its
# future (coalesced) and stragglers hit the result cache (cached).  Either
# way exactly one response did the work, and all report the same kernel.
N = 8
payload = {"fingerprint": fp, "procs": 6, "tenant": "smoke"}
with concurrent.futures.ThreadPoolExecutor(N) as pool:
    replies = list(pool.map(lambda _: post("/v1/schedule", payload), range(N)))
assert all(s == 200 for s, _, _ in replies), [s for s, _, _ in replies]
bodies = [b for _, b, _ in replies]
computed = [b for b in bodies if not b.get("coalesced") and not b.get("cached")]
assert len(computed) == 1, [  # exactly one request paid for the schedule
    (b.get("coalesced"), b.get("cached")) for b in bodies]
assert len({b["kernel"] for b in bodies}) == 1, bodies
assert len({b["makespan"] for b in bodies}) == 1, bodies

# -- shedding: burst past --max-backlog=2 => fast 429 + Retry-After ----------
sheds = []
for round_ in range(6):
    reqs = [{"fingerprint": fp, "procs": 8 + round_ * 32 + i} for i in range(32)]
    with concurrent.futures.ThreadPoolExecutor(32) as pool:
        burst = list(pool.map(lambda p: post("/v1/schedule", p), reqs))
    assert all(s in (200, 429) for s, _, _ in burst), [s for s, _, _ in burst]
    sheds += [(b, h) for s, b, h in burst if s == 429]
    if sheds:
        break
assert sheds, "burst never overflowed the bounded queue"
for body, headers in sheds:
    assert int(headers["Retry-After"]) >= 1, headers
    assert body["retry_after"] >= 1, body

# -- metrics + health --------------------------------------------------------
with urllib.request.urlopen(base + "/metrics", timeout=30) as resp:
    samples = parse_prometheus(resp.read().decode())
assert any(k.startswith("repro_serve_requests_total") for k in samples), samples
assert sum(v for k, v in samples.items()
           if k.startswith("repro_serve_shed_total")) >= len(sheds), samples
with urllib.request.urlopen(base + "/healthz", timeout=30) as resp:
    health = json.loads(resp.read())
assert health["status"] == "ok", health

print(f"serve client OK: coalesced+cached={N - 1}, shed={len(sheds)}, "
      f"metrics samples={len(samples)}")
EOF

# -- graceful drain on SIGTERM ----------------------------------------------
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
trap - EXIT
[ "$STATUS" -eq 0 ] || { echo "server exited $STATUS on SIGTERM:"; cat "$LOG"; exit 1; }
grep -q "drained" "$LOG" || { echo "no drain banner in log:"; cat "$LOG"; exit 1; }

echo "serve smoke OK"
